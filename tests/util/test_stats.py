"""Statistical estimators behind the paper's error bars."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import (
    anytime_proportion_ci,
    half_width_for_proportion,
    mean_and_sem,
    poisson_ci,
    proportion_ci,
    required_events_for_relative_ci,
    two_proportion_z,
    wilson_ci,
)


def test_poisson_ci_zero_events():
    ci = poisson_ci(0)
    assert ci.lower == 0.0
    assert ci.upper == pytest.approx(3.6889, abs=1e-3)


def test_poisson_ci_100_events_is_about_20pct():
    # 100 Poisson events give a ~±20% interval; the paper's "CIs lower
    # than 10%" requires the ~385 events computed below.
    ci = poisson_ci(100)
    assert 0.18 < ci.relative_half_width() < 0.22


def test_poisson_ci_385_events_hits_10pct():
    ci = poisson_ci(385)
    assert ci.relative_half_width() < 0.105


def test_poisson_ci_contains_point():
    ci = poisson_ci(17)
    assert ci.lower < 17 < ci.upper


def test_poisson_ci_negative_raises():
    with pytest.raises(ValueError):
        poisson_ci(-1)


def test_poisson_ci_bad_confidence():
    with pytest.raises(ValueError):
        poisson_ci(5, confidence=1.5)


def test_wald_worst_case_is_1p96_pct_for_10000():
    # Section 6: 10,000 injections give worst-case error bars of 1.96%.
    assert half_width_for_proportion(10_000) == pytest.approx(0.0098, abs=1e-4)
    ci = proportion_ci(5_000, 10_000)
    assert (ci.upper - ci.lower) == pytest.approx(0.0196, abs=2e-4)


def test_proportion_ci_clipped_to_unit_interval():
    ci = proportion_ci(0, 10)
    assert ci.lower == 0.0
    ci = proportion_ci(10, 10)
    assert ci.upper == 1.0


def test_proportion_ci_validates():
    with pytest.raises(ValueError):
        proportion_ci(5, 0)
    with pytest.raises(ValueError):
        proportion_ci(11, 10)


def test_wilson_narrower_than_wald_at_extremes():
    wald = proportion_ci(1, 1000)
    wilson = wilson_ci(1, 1000)
    assert wilson.lower > 0.0 >= wald.lower


def test_wilson_validates():
    with pytest.raises(ValueError):
        wilson_ci(2, 0)
    with pytest.raises(ValueError):
        wilson_ci(-1, 5)


def test_required_events_for_10pct_ci():
    # (1.96 / 0.1)^2 ~ 385 events for a 10% relative CI at 95%.
    needed = required_events_for_relative_ci(0.10)
    assert 380 <= needed <= 390


def test_required_events_tighter_needs_more():
    assert required_events_for_relative_ci(0.05) > required_events_for_relative_ci(0.2)


def test_required_events_validates():
    with pytest.raises(ValueError):
        required_events_for_relative_ci(0.0)


def test_mean_and_sem():
    mean, sem = mean_and_sem(np.array([1.0, 2.0, 3.0]))
    assert mean == pytest.approx(2.0)
    assert sem == pytest.approx(1.0 / math.sqrt(3))


def test_mean_and_sem_single_value():
    mean, sem = mean_and_sem(np.array([4.2]))
    assert mean == pytest.approx(4.2)
    assert sem == 0.0


def test_mean_and_sem_empty_raises():
    with pytest.raises(ValueError):
        mean_and_sem(np.array([]))


@settings(max_examples=50, deadline=None)
@given(events=st.integers(1, 2000))
def test_poisson_ci_monotone_width(events):
    ci = poisson_ci(events)
    assert 0 <= ci.lower < events < ci.upper


@settings(max_examples=50, deadline=None)
@given(successes=st.integers(0, 100), extra=st.integers(1, 100))
def test_wilson_within_unit_interval(successes, extra):
    trials = successes + extra
    ci = wilson_ci(successes, trials)
    assert 0.0 <= ci.lower <= ci.value <= ci.upper <= 1.0


# -- anytime-valid proportion CI -------------------------------------------------


def test_anytime_ci_contains_point_and_unit_interval():
    ci = anytime_proportion_ci(30, 100)
    assert 0.0 <= ci.lower <= ci.value <= ci.upper <= 1.0
    assert ci.value == pytest.approx(0.3)


def test_anytime_ci_wider_than_wilson():
    # The price of validity under continuous monitoring: at any fixed n
    # the anytime interval is strictly more conservative.
    for n in (20, 200, 2000):
        anytime = anytime_proportion_ci(n // 4, n)
        wilson = wilson_ci(n // 4, n)
        assert (anytime.upper - anytime.lower) > (wilson.upper - wilson.lower)


def test_anytime_ci_shrinks_with_n():
    widths = [
        anytime_proportion_ci(n // 2, n).upper - anytime_proportion_ci(n // 2, n).lower
        for n in (10, 100, 1000, 10000)
    ]
    assert widths == sorted(widths, reverse=True)


def test_anytime_ci_validates():
    with pytest.raises(ValueError):
        anytime_proportion_ci(1, 0)
    with pytest.raises(ValueError):
        anytime_proportion_ci(5, 4)
    with pytest.raises(ValueError):
        anytime_proportion_ci(1, 10, confidence=0.0)


@settings(max_examples=50, deadline=None)
@given(successes=st.integers(0, 100), extra=st.integers(1, 100))
def test_anytime_within_unit_interval(successes, extra):
    trials = successes + extra
    ci = anytime_proportion_ci(successes, trials)
    assert 0.0 <= ci.lower <= ci.value <= ci.upper <= 1.0


# -- two-proportion z-test --------------------------------------------------------


def test_two_proportion_z_identical_rates():
    z, p = two_proportion_z(30, 100, 30, 100)
    assert z == pytest.approx(0.0)
    assert p == pytest.approx(1.0)


def test_two_proportion_z_detects_difference():
    z, p = two_proportion_z(80, 100, 20, 100)
    assert z > 5.0
    assert p < 1e-8


def test_two_proportion_z_antisymmetric():
    z_ab, p_ab = two_proportion_z(10, 50, 25, 50)
    z_ba, p_ba = two_proportion_z(25, 50, 10, 50)
    assert z_ab == pytest.approx(-z_ba)
    assert p_ab == pytest.approx(p_ba)


def test_two_proportion_z_degenerate_pool_is_null():
    # All successes (or all failures) in both samples: zero pooled
    # variance, no evidence of difference.
    assert two_proportion_z(50, 50, 30, 30) == (0.0, 1.0)
    assert two_proportion_z(0, 50, 0, 30) == (0.0, 1.0)


def test_two_proportion_z_validates():
    with pytest.raises(ValueError):
        two_proportion_z(1, 0, 1, 10)
    with pytest.raises(ValueError):
        two_proportion_z(11, 10, 1, 10)
