"""ASCII table rendering."""

import pytest

from repro.util.tables import format_series, format_table


def test_basic_table_alignment():
    text = format_table(["name", "value"], [["a", 1.5], ["bb", 22.25]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "1.50" in text
    assert "22.25" in text


def test_title_and_separator():
    text = format_table(["h"], [["x"]], title="My Table")
    assert text.splitlines()[0] == "My Table"
    assert set(text.splitlines()[1]) == {"="}


def test_numeric_columns_right_aligned():
    text = format_table(["n"], [[1.0], [100.0]])
    rows = text.splitlines()[-2:]
    assert rows[0].endswith("1.00")
    assert rows[1].endswith("100.00")


def test_mixed_width_rows_rejected():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_floatfmt_override():
    text = format_table(["x"], [[3.14159]], floatfmt=".4f")
    assert "3.1416" in text


def test_bool_cells():
    text = format_table(["ok"], [[True], [False]])
    assert "yes" in text and "no" in text


def test_dash_cells_do_not_break_alignment():
    text = format_table(["a", "b"], [["x", "-"], ["y", 2.0]])
    assert "-" in text


def test_format_series():
    text = format_series("bench", [1, 2], [10.0, 20.5])
    assert text == "bench: (1, 10.00) (2, 20.50)"


def test_format_series_length_mismatch():
    with pytest.raises(ValueError):
        format_series("x", [1, 2], [1.0])


def test_empty_rows_table():
    text = format_table(["a"], [])
    assert "a" in text
