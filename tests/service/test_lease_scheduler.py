"""Scheduler semantics through a scripted streaming backend.

These tests drive ``run_sharded_campaign`` with an in-process fake that
speaks the streaming backend protocol (``rec`` events, terminal lease
results) and injects scripted faults: a worker death after N records,
a poison run that kills every worker that touches it.  They pin down
the service-layer contracts the broker relies on:

* a re-leased range resumes *after* the last streamed record;
* a poison run is quarantined exactly once — with the triggering lease
  on the event — and every subsequent lease ships it in its skip set;
* the merged campaign is byte-identical to serial wherever no run was
  quarantined, and complete either way.
"""

import json
import time

import pytest

from repro.carolfi.campaign import CampaignConfig, run_campaign
from repro.carolfi.engine import RetryPolicy, ShardSpec, _execute_shard
from repro.service.backend import BackendEvent, LeaseResult, ShardBackend, ShardLease
from repro.service.scheduler import StealPolicy, _contiguous_ranges

CONFIG = CampaignConfig(
    benchmark="nw",
    injections=12,
    seed=13,
    benchmark_params={"n": 16, "rows_per_step": 4},
)
SHARD_SIZE = 6
FAST = RetryPolicy(max_attempts=6, backoff_base_s=0.005, backoff_cap_s=0.01)


class ScriptedBackend(ShardBackend):
    """Executes leases synchronously, with scripted worker deaths."""

    supports_steal = False
    streams_records = True

    def __init__(self, config, fingerprint, *, poison=(), die_after=None):
        self.config = config
        self.fingerprint = fingerprint
        self.poison = set(poison)  # runs that kill their worker every time
        self.die_after = dict(die_after or {})  # shard -> records before dying once
        self.submitted: list[ShardLease] = []
        self._pending: ShardLease | None = None
        self._events: list[BackendEvent] = []
        self._results: list[LeaseResult] = []

    def capacity(self) -> int:
        return 0 if self._pending is not None else 1

    def submit(self, lease: ShardLease) -> str:
        assert self._pending is None
        self.submitted.append(lease)
        self._pending = lease
        return "scripted/worker"

    def _execute(self, lease: ShardLease) -> None:
        budget = self.die_after.pop(lease.shard_index, None)
        sent = 0
        for k in range(lease.start, lease.stop):
            if k in self.poison and k not in lease.skip:
                self._events.append(BackendEvent("run", lease.lease_id, run=k))
                self._results.append(
                    LeaseResult(
                        lease.lease_id, "dead", detail="scripted poison run", worker="scripted/worker"
                    )
                )
                return
            self._events.append(BackendEvent("run", lease.lease_id, run=k))
            _, rows = _execute_shard(
                self.config,
                ShardSpec(index=lease.shard_index, start=k, stop=k + 1),
                None,
                self.fingerprint,
                skip_runs=lease.skip,
            )
            self._events.append(
                BackendEvent("rec", lease.lease_id, run=k, row=rows[0])
            )
            sent += 1
            if budget is not None and sent >= budget:
                self._results.append(
                    LeaseResult(
                        lease.lease_id, "dead", detail="scripted mid-lease death", worker="scripted/worker"
                    )
                )
                return
        self._results.append(
            LeaseResult(lease.lease_id, "done", worker="scripted/worker")
        )

    def heartbeats(self) -> list[BackendEvent]:
        if self._pending is not None:
            lease, self._pending = self._pending, None
            self._execute(lease)
        out, self._events = self._events, []
        return out

    def results(self) -> list[LeaseResult]:
        out, self._results = self._results, []
        return out

    def cancel(self, lease_id: str, *, reap: bool = False) -> None:
        if self._pending is not None and self._pending.lease_id == lease_id:
            self._pending = None

    def close(self) -> None:
        self._pending = None


def _run_scripted(tmp_path, **script):
    from repro.carolfi.engine import campaign_fingerprint, run_sharded_campaign

    backend = ScriptedBackend(
        CONFIG, campaign_fingerprint(CONFIG, SHARD_SIZE), **script
    )
    events = []
    result = run_sharded_campaign(
        CONFIG,
        workers=2,
        shard_size=SHARD_SIZE,
        backend=backend,
        retry=FAST,
        failure_log=tmp_path / "failures.jsonl",
        checkpoint_dir=tmp_path / "ckpt",
    )
    for line in (tmp_path / "failures.jsonl").read_text().splitlines():
        events.append(json.loads(line))
    return result, backend, events


@pytest.fixture(scope="module")
def serial_rows():
    return [r.to_dict() for r in run_campaign(CONFIG).records]


def test_streaming_backend_matches_serial(tmp_path, serial_rows):
    result, backend, _events = _run_scripted(tmp_path)
    assert [r.to_dict() for r in result.records] == serial_rows
    assert len(backend.submitted) == 2  # one lease per shard, no retries


def test_re_lease_resumes_after_last_streamed_record(tmp_path, serial_rows):
    result, backend, events = _run_scripted(tmp_path, die_after={0: 2})
    assert [r.to_dict() for r in result.records] == serial_rows
    re_leases = [e for e in events if e["event"] == "re_lease"]
    assert len(re_leases) == 1
    # Two records streamed before the death: resume at start + 2, not 0.
    assert re_leases[0]["resume_from"] == 2
    resumed = [l for l in backend.submitted if l.shard_index == 0 and l.start == 2]
    assert len(resumed) == 1 and resumed[0].stop == SHARD_SIZE


def test_poison_run_quarantined_once_with_lease_attribution(tmp_path, serial_rows):
    poison = 7  # second shard
    result, backend, events = _run_scripted(tmp_path, poison={poison})
    rows = [r.to_dict() for r in result.records]
    # Every non-poisoned record is still byte-identical to serial.
    assert [r for r in rows if r["run_index"] != poison] == [
        r for r in serial_rows if r["run_index"] != poison
    ]
    quarantined = rows[poison]
    assert quarantined["run_index"] == poison
    assert quarantined["outcome"] == "due"
    assert "sandbox:" in quarantined["due_detail"]

    quarantine_events = [e for e in events if e["event"] == "quarantine"]
    assert len(quarantine_events) == 1, "quarantine must be deduped"
    assert quarantine_events[0]["run"] == poison
    # The triggering lease (shard attempt) is on the record.
    assert quarantine_events[0]["lease"] in {l.lease_id for l in backend.submitted}
    # Every lease issued after the quarantine ships the skip entry: the
    # run is never re-leased anywhere without its sandbox event.
    seen_quarantine = False
    for lease in backend.submitted:
        if lease.lease_id == quarantine_events[0]["lease"]:
            seen_quarantine = True
            continue
        if seen_quarantine and lease.shard_index == 1:
            assert poison in lease.skip
    deaths = [e for e in events if e["event"] == "worker_death" and e.get("run") == poison]
    assert len(deaths) == FAST.max_run_deaths


def test_scheduler_writes_replayable_checkpoints(tmp_path, serial_rows):
    result, _backend, _events = _run_scripted(tmp_path)
    # A later campaign must replay entirely from the scheduler-written
    # checkpoints: no backend, no new executions.
    resumed = run_campaign(
        CONFIG, workers=1, shard_size=SHARD_SIZE, checkpoint_dir=tmp_path / "ckpt"
    )
    assert [r.to_dict() for r in resumed.records] == serial_rows


def test_lease_lifecycle_events_logged_for_streaming_backend(tmp_path):
    _result, backend, events = _run_scripted(tmp_path)
    kinds = {e["event"] for e in events}
    assert "lease" in kinds and "lease_done" in kinds
    leases = [e for e in events if e["event"] == "lease"]
    assert {l["lease"] for l in leases} == {l.lease_id for l in backend.submitted}
    assert all(l["worker"] == "scripted/worker" for l in leases)


def test_contiguous_ranges_groups_runs():
    assert _contiguous_ranges([]) == []
    assert _contiguous_ranges([3]) == [(3, 4)]
    assert _contiguous_ranges([1, 2, 3, 7, 9, 10]) == [(1, 4), (7, 8), (9, 11)]


def test_steal_policy_validation():
    with pytest.raises(ValueError):
        StealPolicy(min_remaining=1)
    with pytest.raises(ValueError):
        StealPolicy(quantile=0.0)
    with pytest.raises(ValueError):
        StealPolicy(quantile=1.5)
    with pytest.raises(ValueError):
        StealPolicy(ewma_alpha=0.0)
    with pytest.raises(ValueError):
        StealPolicy(ewma_alpha=1.1)
    with pytest.raises(ValueError):
        StealPolicy(min_benefit_s=-0.1)
    assert StealPolicy().enabled and StealPolicy().adaptive


class StealableBackend(ShardBackend):
    """Two-slot streaming backend with one deliberately slow worker.

    The "slow" slot (first submit wins it) sleeps ``latency`` seconds
    and then streams exactly one record per ``heartbeats()`` drain; the
    "fast" slot executes its whole lease instantly.  ``shrink`` narrows
    the slow lease at the next run boundary — the same protocol the
    broker speaks over the wire, scripted deterministically here so the
    adaptive (EWMA) steal path can be pinned down in-process.
    """

    supports_steal = True
    streams_records = True

    def __init__(self, config, fingerprint, *, latency=0.0):
        self.config = config
        self.fingerprint = fingerprint
        self.latency = latency
        self.slow: dict | None = None  # {"lease":, "next":, "stop":}
        self.fast: ShardLease | None = None
        self.submitted: list[ShardLease] = []
        self._events: list[BackendEvent] = []
        self._results: list[LeaseResult] = []

    def capacity(self) -> int:
        return int(self.slow is None) + int(self.fast is None)

    def submit(self, lease: ShardLease) -> str:
        self.submitted.append(lease)
        if self.slow is None:
            self.slow = {"lease": lease, "next": lease.start, "stop": lease.stop}
            return "slow"
        assert self.fast is None
        self.fast = lease
        return "fast"

    def _row(self, lease: ShardLease, k: int) -> dict:
        _, rows = _execute_shard(
            self.config,
            ShardSpec(index=lease.shard_index, start=k, stop=k + 1),
            None,
            self.fingerprint,
            skip_runs=lease.skip,
        )
        return rows[0]

    def heartbeats(self) -> list[BackendEvent]:
        if self.fast is not None:
            lease, self.fast = self.fast, None
            for k in range(lease.start, lease.stop):
                self._events.append(BackendEvent("run", lease.lease_id, run=k))
                self._events.append(
                    BackendEvent("rec", lease.lease_id, run=k, row=self._row(lease, k))
                )
            self._results.append(LeaseResult(lease.lease_id, "done", worker="fast"))
        if self.slow is not None:
            st = self.slow
            k = st["next"]
            if k >= st["stop"]:
                self._results.append(
                    LeaseResult(st["lease"].lease_id, "done", worker="slow")
                )
                self.slow = None
            else:
                if self.latency:
                    time.sleep(self.latency)
                self._events.append(BackendEvent("run", st["lease"].lease_id, run=k))
                self._events.append(
                    BackendEvent(
                        "rec", st["lease"].lease_id, run=k, row=self._row(st["lease"], k)
                    )
                )
                st["next"] = k + 1
        out, self._events = self._events, []
        return out

    def results(self) -> list[LeaseResult]:
        out, self._results = self._results, []
        return out

    def shrink(self, lease_id: str, new_stop: int) -> bool:
        if self.slow is not None and self.slow["lease"].lease_id == lease_id:
            self.slow["stop"] = min(self.slow["stop"], new_stop)
            return True
        return False

    def cancel(self, lease_id: str, *, reap: bool = False) -> None:
        if self.slow is not None and self.slow["lease"].lease_id == lease_id:
            self.slow = None
        if self.fast is not None and self.fast.lease_id == lease_id:
            self.fast = None

    def close(self) -> None:
        self.slow = self.fast = None


def _run_stealable(tmp_path, *, latency, policy):
    from repro.carolfi.engine import campaign_fingerprint, run_sharded_campaign

    backend = StealableBackend(
        CONFIG, campaign_fingerprint(CONFIG, CONFIG.injections), latency=latency
    )
    result = run_sharded_campaign(
        CONFIG,
        workers=2,
        shard_size=CONFIG.injections,  # one shard: the slow worker gets it all
        backend=backend,
        retry=FAST,
        steal=policy,
        failure_log=tmp_path / "failures.jsonl",
        checkpoint_dir=tmp_path / "ckpt",
    )
    events = [
        json.loads(line)
        for line in (tmp_path / "failures.jsonl").read_text().splitlines()
    ]
    return result, backend, events


def test_adaptive_steal_fires_on_latency_evidence(tmp_path, serial_rows):
    # min_remaining=100 blocks the evidence-free fallback entirely: the
    # only way this campaign can steal is the EWMA estimator judging the
    # slow worker's expected tail against the observed-latency bar.
    policy = StealPolicy(min_remaining=100, min_benefit_s=0.01)
    result, backend, events = _run_stealable(tmp_path, latency=0.05, policy=policy)
    assert [r.to_dict() for r in result.records] == serial_rows
    steals = [e for e in events if e["event"] == "steal"]
    assert steals, "latency evidence must trigger an adaptive steal"
    first = steals[0]
    assert first["estimator"] == "ewma"
    assert first["victim_worker"] == "slow"
    assert first["observed_latency_s"] > 0
    assert first["threshold_s"] > 0
    assert first["expected_tail_s"] >= first["threshold_s"]
    assert first["remaining"] >= 2
    assert first["quantile"] == policy.quantile
    # The stolen tail landed on the fast slot as a real lease.
    stolen = [l for l in backend.submitted if l.start == first["split"]]
    assert stolen and stolen[0].stop == first["stop"]


def test_adaptive_steal_suppressed_below_benefit_floor(tmp_path, serial_rows):
    # Same topology, same idle capacity — but the expected tail of a
    # near-instant worker never clears a 5 s benefit floor, so the
    # latency-driven policy leaves the lease alone instead of splitting
    # on raw run counts the way the old fixed threshold did.
    policy = StealPolicy(min_remaining=100, min_benefit_s=5.0)
    result, _backend, events = _run_stealable(tmp_path, latency=0.0, policy=policy)
    assert [r.to_dict() for r in result.records] == serial_rows
    assert [e for e in events if e["event"] == "steal"] == []
