"""Wire framing: tagged frames must detect truncation and interleaving."""

import json
import zlib

import pytest

from repro.service.wire import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    decode_frame,
    encode_frame,
)


def test_round_trip():
    obj = {"kind": "rec", "run": 7, "row": {"outcome": "sdc", "x": 1.5}}
    assert decode_frame(encode_frame(obj)) == obj


def test_round_trip_without_trailing_newline():
    frame = encode_frame({"a": 1})
    assert decode_frame(frame.rstrip(b"\n")) == {"a": 1}


def test_frame_is_one_line_with_length_and_crc_tags():
    frame = encode_frame({"kind": "ok"})
    assert frame.endswith(b"\n") and frame.count(b"\n") == 1
    length, crc, payload = frame.rstrip(b"\n").split(b":", 2)
    assert int(length) == len(payload)
    assert int(crc, 16) == zlib.crc32(payload)
    assert json.loads(payload) == {"kind": "ok"}


def test_truncated_frame_detected():
    frame = encode_frame({"kind": "rec", "row": {"data": "x" * 100}})
    for cut in (10, len(frame) // 2, len(frame) - 2):
        with pytest.raises(FrameError):
            decode_frame(frame[:cut])


def test_interleaved_frames_detected():
    a = encode_frame({"kind": "a", "n": 1}).rstrip(b"\n")
    b = encode_frame({"kind": "b", "n": 2}).rstrip(b"\n")
    # Two writers tearing into one line: tag and payload disagree.
    torn = a[: len(a) // 2] + b[len(b) // 2 :]
    with pytest.raises(FrameError):
        decode_frame(torn)


def test_corrupted_payload_detected():
    frame = bytearray(encode_frame({"kind": "rec", "value": 12345}))
    frame[-5] ^= 0x01  # flip one payload bit
    with pytest.raises(FrameError):
        decode_frame(bytes(frame))


def test_bad_tags_rejected():
    with pytest.raises(FrameError):
        decode_frame(b"notatag\n")
    with pytest.raises(FrameError):
        decode_frame(b"xx:yy:{}\n")
    with pytest.raises(FrameError):
        decode_frame(b"%d:%08x:%s" % (MAX_FRAME_BYTES + 1, 0, b"{}"))


def test_non_dict_payload_rejected():
    payload = b"[1,2,3]"
    line = b"%d:%08x:%s\n" % (len(payload), zlib.crc32(payload), payload)
    with pytest.raises(FrameError):
        decode_frame(line)


def test_decoder_reassembles_byte_chunks():
    frames = [{"kind": "run", "run": k} for k in range(20)]
    stream = b"".join(encode_frame(f) for f in frames)
    for chunk_size in (1, 3, 7, len(stream)):
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(stream), chunk_size):
            out.extend(decoder.feed(stream[i : i + chunk_size]))
        assert out == frames
        assert decoder.skipped == 0
        assert decoder.pending == 0


def test_decoder_skips_damaged_line_and_resyncs():
    good1 = encode_frame({"n": 1})
    good2 = encode_frame({"n": 2})
    damaged = bytearray(encode_frame({"n": 99}))
    damaged[-4] ^= 0xFF
    decoder = FrameDecoder()
    out = decoder.feed(good1 + bytes(damaged) + good2)
    assert out == [{"n": 1}, {"n": 2}]
    assert decoder.skipped == 1


def test_decoder_tolerates_partial_tail_then_completes():
    frame = encode_frame({"kind": "rec", "run": 3})
    decoder = FrameDecoder()
    assert decoder.feed(frame[:-4]) == []
    assert decoder.pending > 0
    assert decoder.feed(frame[-4:]) == [{"kind": "rec", "run": 3}]


def test_decoder_drops_unbounded_garbage():
    decoder = FrameDecoder()
    # A newline-free flood larger than any legal frame must not buffer forever.
    assert decoder.feed(b"x" * (MAX_FRAME_BYTES + 2)) == []
    assert decoder.pending == 0
    assert decoder.skipped == 1


def test_decoder_ignores_blank_lines():
    decoder = FrameDecoder()
    assert decoder.feed(b"\n\n" + encode_frame({"a": 1}) + b"\n") == [{"a": 1}]
    assert decoder.skipped == 0


def test_decoder_skips_oversized_line_and_resyncs():
    # A newline-terminated line longer than any legal frame is dropped
    # as one skip, and the decoder locks back on at the next frame.
    oversized = b"z" * (MAX_FRAME_BYTES + 10) + b"\n"
    good = encode_frame({"after": True})
    decoder = FrameDecoder()
    assert decoder.feed(oversized + good) == [{"after": True}]
    assert decoder.skipped == 1
    assert decoder.pending == 0


def test_decoder_crc_corrupt_frame_then_valid_frame():
    corrupt = bytearray(encode_frame({"kind": "rec", "run": 1, "row": {"v": 1}}))
    corrupt[-6] ^= 0x40  # payload no longer matches the CRC tag
    follow = encode_frame({"kind": "done", "lease": "s00001.1"})
    decoder = FrameDecoder()
    out = decoder.feed(bytes(corrupt) + follow)
    assert out == [{"kind": "done", "lease": "s00001.1"}]
    assert decoder.skipped == 1


def test_decoder_frame_split_across_many_chunks():
    frames = [{"kind": "rec", "run": k, "row": {"blob": "y" * 200}} for k in range(3)]
    stream = b"".join(encode_frame(f) for f in frames)
    # Five chunks per frame on average: every frame spans > 2 feeds.
    chunk = max(1, len(stream) // 15)
    decoder = FrameDecoder()
    out = []
    for i in range(0, len(stream), chunk):
        out.extend(decoder.feed(stream[i : i + chunk]))
    assert out == frames
    assert decoder.skipped == 0
    assert decoder.pending == 0
