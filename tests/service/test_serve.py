"""repro-serve end-to-end: submit, watch progress, fetch artifacts."""

import json
import urllib.error
import urllib.request

import pytest

from repro.carolfi.campaign import CampaignConfig, run_campaign
from repro.service.serve import CampaignService

INI = """
[carol-fi]
benchmark = nw
injections = 12
seed = 13

[benchmark.params]
n = 16
rows_per_step = 4
"""

CONFIG = CampaignConfig(
    benchmark="nw",
    injections=12,
    seed=13,
    benchmark_params={"n": 16, "rows_per_step": 4},
)


def _get(base, path, timeout=60):
    return urllib.request.urlopen(f"{base}{path}", timeout=timeout).read()


def _get_json(base, path, timeout=60):
    return json.loads(_get(base, path, timeout=timeout))


def _post(base, path, body, timeout=60):
    req = urllib.request.Request(f"{base}{path}", data=body, method="POST")
    return json.loads(urllib.request.urlopen(req, timeout=timeout).read())


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    with CampaignService(tmp_path_factory.mktemp("serve"), workers=2) as svc:
        yield svc


@pytest.fixture(scope="module")
def base(service):
    return f"http://127.0.0.1:{service.port}"


def test_submit_stream_fetch_round_trip(base, tmp_path):
    serial_log = tmp_path / "serial.jsonl"
    run_campaign(CONFIG, log_path=serial_log)

    sub = _post(base, "/campaigns", INI.encode())
    assert sub["id"].startswith("job-")

    # The stream yields progress snapshots as JSON lines and ends when
    # the job does; the last line is the terminal state.
    lines = _get(base, sub["links"]["stream"]).decode().splitlines()
    snapshots = [json.loads(line) for line in lines]
    assert snapshots, "stream must yield at least one snapshot"
    assert snapshots[-1]["status"] == "done"
    assert snapshots[-1]["records"] == CONFIG.injections
    assert snapshots[-1]["progress"]["done_runs"] == CONFIG.injections

    # The merged artifact is byte-identical to the serial log: the
    # submission API cannot perturb campaign bytes either.
    assert _get(base, sub["links"]["log"]) == serial_log.read_bytes()

    status = _get_json(base, sub["links"]["self"])
    assert status["status"] == "done"
    assert sum(status["outcomes"].values()) == CONFIG.injections

    metrics = _get_json(base, sub["links"]["metrics"])
    counters = {
        name: fam
        for name, fam in metrics["metrics"].items()
        if fam.get("kind") == "counter"
    }
    assert "repro_records_total" in counters

    failures = _get(base, sub["links"]["failures"])
    for line in failures.splitlines():
        json.loads(line)  # structurally valid JSONL (may be empty)


def test_submit_json_config(base):
    body = json.dumps({"config": CONFIG.to_wire(), "workers": 2}).encode()
    sub = _post(base, "/campaigns", body)
    lines = _get(base, sub["links"]["stream"]).decode().splitlines()
    assert json.loads(lines[-1])["status"] == "done"
    listing = _get_json(base, "/campaigns")
    assert any(j["id"] == sub["id"] for j in listing["campaigns"])


def test_bad_submissions_rejected(base):
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(base, "/campaigns", b"this is not a config")
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(base, "/campaigns", json.dumps({"config": {"nope": 1}}).encode())
    assert err.value.code == 400


def test_unknown_routes_and_jobs_404(base):
    for path in ("/campaigns/job-9999", "/campaigns/job-9999/log", "/nowhere"):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base, path, timeout=10)
        assert err.value.code == 404


def test_metrics_scrape_endpoint(base):
    from repro.telemetry.exporters import parse_prometheus_samples

    # At least one job has completed by the time this runs (module-scoped
    # service); /metrics must render every job's registry under a job label.
    body = json.dumps({"config": CONFIG.to_wire(), "workers": 2}).encode()
    sub = _post(base, "/campaigns", body)
    lines = _get(base, sub["links"]["stream"]).decode().splitlines()
    assert json.loads(lines[-1])["status"] == "done"

    samples = parse_prometheus_samples(_get(base, "/metrics").decode())
    assert samples, "the fleet scrape must expose at least one series"
    records = {
        dict(labels).get("job"): value
        for (name, labels), value in samples.items()
        if name == "repro_records_total" and dict(labels).get("outcome") is None
    }
    # Every series carries its job id — per-job counters never sum together.
    assert sub["id"] in records or any(
        dict(labels).get("job") == sub["id"] for (_n, labels) in samples
    )
    per_job = [
        value
        for (name, labels), value in samples.items()
        if name == "repro_records_total" and dict(labels).get("job") == sub["id"]
    ]
    assert per_job and sum(per_job) == CONFIG.injections


def test_log_not_ready_is_conflict(base):
    # Race a fetch against a freshly submitted job: while the job is
    # still queued or running the merged log is a 409, never a partial
    # artifact.  (If the tiny campaign wins the race, the fetch simply
    # succeeds — both outcomes are legal; partial bytes are not.)
    body = json.dumps(
        {"config": CONFIG.to_wire(), "workers": 1}
    ).encode()
    sub = _post(base, "/campaigns", body)
    try:
        _get(base, sub["links"]["log"], timeout=10)
    except urllib.error.HTTPError as err:
        assert err.code == 409
    # Either way the job finishes and the artifact appears.
    lines = _get(base, sub["links"]["stream"]).decode().splitlines()
    assert json.loads(lines[-1])["status"] == "done"
    assert _get(base, sub["links"]["log"])
