"""``repro-inspect service``: lease table and disruption log rendering."""

import io
import json

from repro.telemetry.inspect import main

EVENTS = [
    {"event": "worker_connected", "worker": "w0"},
    {"event": "worker_connected", "worker": "w1"},
    {"event": "lease", "shard": 0, "lease": "s00000.1", "worker": "w0",
     "start": 0, "stop": 8, "attempt": 1, "resume_from": None},
    {"event": "lease", "shard": 1, "lease": "s00001.1", "worker": "w1",
     "start": 8, "stop": 16, "attempt": 1, "resume_from": None},
    {"event": "steal", "shard": 1, "victim": "s00001.1", "victim_worker": "w1",
     "split": 13, "stop": 16},
    {"event": "lease", "shard": 1, "lease": "s00001.2", "worker": "w0",
     "start": 13, "stop": 16, "attempt": 2, "resume_from": 13},
    {"event": "worker_death", "shard": 0, "run": 3, "attempt": 1, "deaths": 1,
     "detail": "exit code 7", "lease": "s00000.1", "worker": "w0"},
    {"event": "retry", "shard": 0, "attempt": 1, "delay_s": 0.01,
     "detail": "exit code 7"},
    {"event": "re_lease", "shard": 0, "lease": "s00000.1", "resume_from": 3,
     "stop": 8, "detail": "exit code 7"},
    {"event": "worker_lost", "worker": "w0", "detail": "connection dropped"},
    {"event": "lease", "shard": 0, "lease": "s00000.2", "worker": "w1",
     "start": 3, "stop": 8, "attempt": 2, "resume_from": 3},
    {"event": "quarantine", "shard": 0, "run": 5,
     "detail": "sandbox: quarantined after 2 worker deaths", "lease": "s00000.2"},
    {"event": "lease_done", "shard": 1, "lease": "s00001.1", "worker": "w1",
     "runs": 5},
    {"event": "lease_done", "shard": 1, "lease": "s00001.2", "worker": "w0",
     "runs": 3},
    {"event": "lease_done", "shard": 0, "lease": "s00000.2", "worker": "w1",
     "runs": 5},
]


def _write_log(tmp_path):
    log = tmp_path / "failures.jsonl"
    log.write_text("".join(json.dumps(e) + "\n" for e in EVENTS))
    return log


def test_service_view_renders_leases_workers_and_disruptions(tmp_path):
    log = _write_log(tmp_path)
    out = io.StringIO()
    assert main(["service", str(log)], stream=out) == 0
    text = out.getvalue()

    # Lease table: every lease appears, with its fate.
    assert "s00000.1" in text and "s00001.2" in text
    assert "stolen@13, done" in text  # the victim finished its shrunk half
    assert "re-leased@3" in text  # the dead worker's lease
    # Worker summary: both workers, w0 carries the death and the drop.
    assert "w0" in text and "w1" in text
    # Disruption log includes the steal, the death and the quarantine.
    assert "steal" in text
    assert "worker_death" in text
    assert "quarantine" in text
    assert "run 5 quarantined" in text


def test_service_view_accepts_campaign_directory(tmp_path):
    _write_log(tmp_path)
    out = io.StringIO()
    assert main(["service", str(tmp_path)], stream=out) == 0
    assert "lease table" in out.getvalue()


def test_service_view_rejects_non_distributed_log(tmp_path):
    log = tmp_path / "failures.jsonl"
    log.write_text(json.dumps({"event": "retry", "shard": 0}) + "\n")
    assert main(["service", str(log)], stream=io.StringIO()) == 2


def test_service_view_missing_file(tmp_path):
    assert main(["service", str(tmp_path / "nope.jsonl")], stream=io.StringIO()) == 2


def _service_registry():
    from repro.telemetry.metrics import MetricsRegistry

    reg = MetricsRegistry()
    leases = reg.counter("repro_service_leases_total")
    leases.inc(4, event="issued")
    leases.inc(3, event="done")
    leases.inc(1, event="steal")
    reg.counter("repro_service_steals_total").inc()
    reg.counter("repro_service_disconnects_total").inc(worker="w0")
    runs = reg.counter("repro_service_worker_runs_total")
    runs.inc(5, worker="w0", outcome="masked")
    runs.inc(3, worker="w0", outcome="sdc")
    runs.inc(8, worker="w1", outcome="masked")
    rtt = reg.histogram(
        "repro_service_heartbeat_rtt_seconds", buckets=(0.001, 0.01, 0.1)
    )
    for _ in range(6):
        rtt.observe(0.004, worker="w0")
        rtt.observe(0.004, worker="w1")
    reg.gauge("repro_service_worker_up").set(1, worker="w1")
    reg.gauge("repro_service_worker_up").set(0, worker="w0")
    reg.gauge("repro_service_worker_idle_seconds").set(0.5, worker="w1")
    reg.gauge("repro_service_lease_slowest_seconds").set(1.25, worker="w0")
    return reg


def test_service_view_joins_metrics_snapshot(tmp_path):
    from repro.telemetry.exporters import prometheus_text

    log = _write_log(tmp_path)
    (tmp_path / "metrics.prom").write_text(prometheus_text(_service_registry()))
    out = io.StringIO()
    assert main(["service", str(log)], stream=out) == 0
    text = out.getvalue()
    # Broker-only counters are no longer dropped when a snapshot exists.
    assert "service counters" in text
    assert "leases issued" in text and "leases done" in text
    assert "steals" in text and "worker disconnects" in text
    # Per-worker join: records streamed and heartbeat RTT columns.
    assert "recs" in text and "rtt p50 ms" in text


def test_service_view_attributes_worker_loss_with_addr_and_pid(tmp_path):
    events = list(EVENTS)
    events[0] = {
        "event": "worker_connected", "worker": "w0",
        "addr": "10.0.0.5:51000", "pid": 4242,
    }
    events[9] = {
        "event": "worker_lost", "worker": "w0", "detail": "connection dropped",
        "addr": "10.0.0.5:51000", "pid": 4242,
    }
    log = tmp_path / "failures.jsonl"
    log.write_text("".join(json.dumps(e) + "\n" for e in events))
    out = io.StringIO()
    assert main(["service", str(log)], stream=out) == 0
    text = out.getvalue()
    assert "10.0.0.5:51000" in text  # workers table carries the peer addr
    assert "4242" in text
    assert "(10.0.0.5:51000, pid 4242): connection dropped" in text


def test_live_view_renders_fleet_table_from_scrape(tmp_path):
    import threading
    from http.server import BaseHTTPRequestHandler, HTTPServer

    from repro.telemetry.exporters import prometheus_text

    body = prometheus_text(_service_registry()).encode("utf-8")

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):
            pass

    server = HTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        out = io.StringIO()
        host, port = server.server_address[:2]
        assert main(["live", f"{host}:{port}", "--once"], stream=out) == 0
        text = out.getvalue()
        assert "fleet:" in text and "16 runs streamed" in text
        assert "leases 3/4 done" in text and "steals 1" in text
        assert "workers 1/2 up" in text
        assert "w0" in text and "DOWN" in text  # worker_up 0 renders as DOWN
        assert "w1" in text and "up" in text
        assert "masked:5 sdc:3" in text  # outcome mix column
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_live_view_scrape_failure_is_exit_2(tmp_path):
    import socket

    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()  # nothing listens here now
    assert main(["live", f"127.0.0.1:{port}", "--once"], stream=io.StringIO()) == 2
