"""``repro-inspect service``: lease table and disruption log rendering."""

import io
import json

from repro.telemetry.inspect import main

EVENTS = [
    {"event": "worker_connected", "worker": "w0"},
    {"event": "worker_connected", "worker": "w1"},
    {"event": "lease", "shard": 0, "lease": "s00000.1", "worker": "w0",
     "start": 0, "stop": 8, "attempt": 1, "resume_from": None},
    {"event": "lease", "shard": 1, "lease": "s00001.1", "worker": "w1",
     "start": 8, "stop": 16, "attempt": 1, "resume_from": None},
    {"event": "steal", "shard": 1, "victim": "s00001.1", "victim_worker": "w1",
     "split": 13, "stop": 16},
    {"event": "lease", "shard": 1, "lease": "s00001.2", "worker": "w0",
     "start": 13, "stop": 16, "attempt": 2, "resume_from": 13},
    {"event": "worker_death", "shard": 0, "run": 3, "attempt": 1, "deaths": 1,
     "detail": "exit code 7", "lease": "s00000.1", "worker": "w0"},
    {"event": "retry", "shard": 0, "attempt": 1, "delay_s": 0.01,
     "detail": "exit code 7"},
    {"event": "re_lease", "shard": 0, "lease": "s00000.1", "resume_from": 3,
     "stop": 8, "detail": "exit code 7"},
    {"event": "worker_lost", "worker": "w0", "detail": "connection dropped"},
    {"event": "lease", "shard": 0, "lease": "s00000.2", "worker": "w1",
     "start": 3, "stop": 8, "attempt": 2, "resume_from": 3},
    {"event": "quarantine", "shard": 0, "run": 5,
     "detail": "sandbox: quarantined after 2 worker deaths", "lease": "s00000.2"},
    {"event": "lease_done", "shard": 1, "lease": "s00001.1", "worker": "w1",
     "runs": 5},
    {"event": "lease_done", "shard": 1, "lease": "s00001.2", "worker": "w0",
     "runs": 3},
    {"event": "lease_done", "shard": 0, "lease": "s00000.2", "worker": "w1",
     "runs": 5},
]


def _write_log(tmp_path):
    log = tmp_path / "failures.jsonl"
    log.write_text("".join(json.dumps(e) + "\n" for e in EVENTS))
    return log


def test_service_view_renders_leases_workers_and_disruptions(tmp_path):
    log = _write_log(tmp_path)
    out = io.StringIO()
    assert main(["service", str(log)], stream=out) == 0
    text = out.getvalue()

    # Lease table: every lease appears, with its fate.
    assert "s00000.1" in text and "s00001.2" in text
    assert "stolen@13, done" in text  # the victim finished its shrunk half
    assert "re-leased@3" in text  # the dead worker's lease
    # Worker summary: both workers, w0 carries the death and the drop.
    assert "w0" in text and "w1" in text
    # Disruption log includes the steal, the death and the quarantine.
    assert "steal" in text
    assert "worker_death" in text
    assert "quarantine" in text
    assert "run 5 quarantined" in text


def test_service_view_accepts_campaign_directory(tmp_path):
    _write_log(tmp_path)
    out = io.StringIO()
    assert main(["service", str(tmp_path)], stream=out) == 0
    assert "lease table" in out.getvalue()


def test_service_view_rejects_non_distributed_log(tmp_path):
    log = tmp_path / "failures.jsonl"
    log.write_text(json.dumps({"event": "retry", "shard": 0}) + "\n")
    assert main(["service", str(log)], stream=io.StringIO()) == 2


def test_service_view_missing_file(tmp_path):
    assert main(["service", str(tmp_path / "nope.jsonl")], stream=io.StringIO()) == 2
