"""Broker-mode campaigns over real TCP with real worker processes.

The acceptance bar for the distributed service: the merged campaign
log from broker mode with two workers — including a forced mid-lease
worker kill and a forced straggler steal — must be byte-identical to
the serial log.  Workers here are genuine ``repro-worker`` subprocesses
talking to the broker over localhost sockets.
"""

import json
import os
import subprocess
import sys
import threading
import urllib.request
from pathlib import Path

import pytest

from repro.carolfi.campaign import CampaignConfig, run_campaign
from repro.carolfi.engine import RetryPolicy, campaign_fingerprint, run_sharded_campaign
from repro.service.broker import BrokerBackend, lease_from_wire, lease_to_wire
from repro.service.backend import ShardLease
from repro.telemetry import Telemetry, TelemetryConfig
from repro.telemetry.exporters import parse_prometheus_samples

CONFIG = CampaignConfig(
    benchmark="nw",
    injections=16,
    seed=13,
    benchmark_params={"n": 16, "rows_per_step": 4},
)
FAST = RetryPolicy(max_attempts=8, backoff_base_s=0.01, backoff_cap_s=0.05)
SRC = str(Path(__file__).resolve().parents[2] / "src")


def _spawn_worker(address, name, **env_extra):
    env = dict(os.environ, PYTHONPATH=SRC)
    for var in ("REPRO_WORKER_DIE_AFTER", "REPRO_WORKER_SLOW_S"):
        env.pop(var, None)  # never inherit chaos hooks from the outer env
    env.update({k: str(v) for k, v in env_extra.items()})
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service.worker",
            f"{address[0]}:{address[1]}",
            "--name",
            name,
            "--once",
        ],
        env=env,
    )


def _broker_campaign(tmp_path, *, worker_envs, shard_size=None):
    serial_log = tmp_path / "serial.jsonl"
    run_campaign(CONFIG, log_path=serial_log)

    broker = BrokerBackend(CONFIG, campaign_fingerprint(CONFIG, shard_size))
    log = tmp_path / "broker.jsonl"
    flog = tmp_path / "failures.jsonl"
    workers = [
        _spawn_worker(broker.address, f"w{i}", **env)
        for i, env in enumerate(worker_envs)
    ]
    try:
        # Don't lease until every worker is connected: on a loaded
        # 1-CPU host an early arrival can otherwise drain both shards
        # before the chaos worker's interpreter finishes booting, and
        # the kill/steal the test means to observe never happens.
        assert broker.wait_for_workers(len(workers), timeout=30.0)
        result = run_sharded_campaign(
            CONFIG,
            workers=len(workers),
            backend=broker,
            retry=FAST,
            shard_size=shard_size,
            log_path=log,
            failure_log=flog,
        )
    finally:
        broker.close()
        for proc in workers:
            proc.wait(timeout=20)
    events = [json.loads(line) for line in flog.read_text().splitlines()]
    return result, serial_log.read_bytes(), log.read_bytes(), events


def test_two_workers_merge_byte_identical(tmp_path):
    _result, serial_bytes, broker_bytes, events = _broker_campaign(
        tmp_path, worker_envs=[{}, {}]
    )
    assert broker_bytes == serial_bytes  # the cmp invariant, over real sockets
    kinds = {e["event"] for e in events}
    assert "lease" in kinds and "lease_done" in kinds and "worker_connected" in kinds


def test_killed_worker_is_re_leased_and_log_stays_identical(tmp_path):
    # Multi-run shards (8 runs each), so dying three records in is a
    # mid-lease death with work left to re-lease — at the default
    # shard size every lease here is a single run and a kill can only
    # land on a lease boundary.
    _result, serial_bytes, broker_bytes, events = _broker_campaign(
        tmp_path,
        worker_envs=[{"REPRO_WORKER_DIE_AFTER": 3}, {}],
        shard_size=8,
    )
    assert broker_bytes == serial_bytes
    kinds = {e["event"] for e in events}
    assert "worker_death" in kinds, "the kill must be observed"
    re_leases = [e for e in events if e["event"] == "re_lease"]
    assert re_leases, "the dead worker's lease must be re-leased"
    # Streamed records count: the re-lease resumes past at least one
    # record the dead worker delivered, not from scratch, whenever it
    # died mid-range with records already streamed.
    lease_starts = {
        (e["shard"], e["start"]): e for e in events if e["event"] == "lease"
    }
    for rl in re_leases:
        resumed = lease_starts.get((rl["shard"], rl["resume_from"]))
        assert resumed is not None, "a lease must cover the resumed range"


def test_straggler_lease_is_stolen_and_log_stays_identical(tmp_path):
    _result, serial_bytes, broker_bytes, events = _broker_campaign(
        tmp_path,
        worker_envs=[{"REPRO_WORKER_SLOW_S": 0.2}, {}],
        shard_size=CONFIG.injections,  # one shard: only a steal can share it
    )
    assert broker_bytes == serial_bytes
    steals = [e for e in events if e["event"] == "steal"]
    assert steals, "idle capacity plus a straggler must trigger a steal"
    split = steals[0]
    assert split["split"] < split["stop"] <= CONFIG.injections
    # The thief's lease covers [split, stop) — visible as a lease event.
    thief = [
        e
        for e in events
        if e["event"] == "lease" and e["start"] == split["split"]
    ]
    assert thief and thief[0]["stop"] == split["stop"]


def test_fleet_trace_and_live_metrics_scrape(tmp_path):
    """The full observability acceptance drill, over real sockets.

    A forced-steal broker campaign (one straggler, one healthy worker,
    a single shard) must leave ``campaign.jsonl`` byte-identical to
    serial while producing (a) one merged ``trace.jsonl`` rooted at the
    campaign span with worker-side lease/run spans from two distinct
    worker processes, and (b) a live ``/metrics`` endpoint whose
    mid-campaign scrapes parse and whose final scrape reconciles with
    the campaign log.
    """
    serial_log = tmp_path / "serial.jsonl"
    run_campaign(CONFIG, log_path=serial_log)

    tel = Telemetry(
        TelemetryConfig(
            trace_path=tmp_path / "trace.jsonl",
            metrics_path=tmp_path / "metrics.prom",
        )
    )
    broker = BrokerBackend(
        CONFIG, campaign_fingerprint(CONFIG, CONFIG.injections), metrics_port=0
    )
    assert broker.metrics_address is not None
    url = "http://{}:{}/metrics".format(*broker.metrics_address)
    log = tmp_path / "broker.jsonl"
    flog = tmp_path / "failures.jsonl"
    workers = [
        _spawn_worker(broker.address, "w0", REPRO_WORKER_SLOW_S=0.2),
        _spawn_worker(broker.address, "w1"),
    ]

    scrapes: list[str] = []
    stop_scraping = threading.Event()

    def scrape_loop():
        while not stop_scraping.is_set():
            try:
                with urllib.request.urlopen(url, timeout=5) as resp:
                    scrapes.append(resp.read().decode("utf-8"))
            except OSError:
                pass
            stop_scraping.wait(0.05)

    scraper = threading.Thread(target=scrape_loop, daemon=True)
    try:
        assert broker.wait_for_workers(len(workers), timeout=30.0)
        scraper.start()
        run_sharded_campaign(
            CONFIG,
            workers=len(workers),
            backend=broker,
            retry=FAST,
            shard_size=CONFIG.injections,  # one shard: only a steal can share it
            log_path=log,
            failure_log=flog,
            telemetry=tel,
        )
        stop_scraping.set()
        scraper.join(timeout=10)
        with urllib.request.urlopen(url, timeout=5) as resp:
            final_text = resp.read().decode("utf-8")
    finally:
        stop_scraping.set()
        broker.close()
        for proc in workers:
            proc.wait(timeout=20)
    tel.finalize()

    # (1) Observability never perturbs records.
    assert log.read_bytes() == serial_log.read_bytes()

    # (2) One coherent trace tree across broker and worker processes.
    spans = [
        json.loads(line)
        for line in (tmp_path / "trace.jsonl").read_text().splitlines()
    ]
    assert spans and all(s["kind"] == "span" for s in spans)
    assert len({s["trace"] for s in spans}) == 1, "one campaign, one trace id"
    campaigns = [s for s in spans if s["name"] == "campaign"]
    assert len(campaigns) == 1 and campaigns[0].get("parent") is None
    campaign_id = campaigns[0]["span"]
    leases = [s for s in spans if s["name"] == "lease"]
    assert leases and all(s["parent"] == campaign_id for s in leases)
    assert len({s["pid"] for s in leases}) >= 2, "spans from two worker processes"
    assert {s["pid"] for s in leases}.isdisjoint({campaigns[0]["pid"]})
    lease_ids = {s["span"] for s in leases}
    runs = [s for s in spans if s["name"] == "run"]
    assert any(s["parent"] in lease_ids for s in runs), "runs hang off leases"
    # The whole forest is one rooted tree: every non-root parent resolves.
    all_ids = {s["span"] for s in spans}
    assert all(s["parent"] in all_ids for s in spans if s.get("parent") is not None)

    # (3) Mid-campaign scrapes parse and show fleet membership.
    live = [s for s in scrapes if "repro_service_worker_up" in s]
    assert live, "a scrape during the campaign must see the fleet gauge"
    mid = parse_prometheus_samples(live[-1])
    up_workers = {
        dict(labels)["worker"]
        for (name, labels), value in mid.items()
        if name == "repro_service_worker_up" and value == 1.0
    }
    assert {"w0", "w1"} <= up_workers

    # (4) The final scrape reconciles with the campaign log.
    final = parse_prometheus_samples(final_text)
    done = sum(
        value
        for (name, _labels), value in final.items()
        if name == "repro_shard_runs_done"
    )
    records = [json.loads(line) for line in log.read_text().splitlines()]
    assert done == len(records) == CONFIG.injections
    assert any(
        name == "repro_service_heartbeat_rtt_seconds_bucket" for name, _ in final
    ), "heartbeat RTT probes must have landed in the histogram"
    assert any(name == "repro_service_lease_turnaround_seconds_bucket" for name, _ in final)

    # (5) The steal decision carries its evidence.
    events = [json.loads(line) for line in flog.read_text().splitlines()]
    steals = [e for e in events if e["event"] == "steal"]
    assert steals, "idle capacity plus a straggler must trigger a steal"
    assert {"estimator", "remaining", "threshold_s", "quantile"} <= steals[0].keys()
    connected = [e for e in events if e["event"] == "worker_connected"]
    assert connected and all("addr" in e and "pid" in e for e in connected)


def test_lease_wire_round_trip():
    lease = ShardLease(
        lease_id="s00001.2",
        shard_index=1,
        start=4,
        stop=9,
        attempt=2,
        skip={5: ("crash", "sandbox: quarantined after 2 deaths")},
    )
    assert lease_from_wire(json.loads(json.dumps(lease_to_wire(lease)))) == lease


def test_lease_range_validation():
    with pytest.raises(ValueError):
        ShardLease(lease_id="x", shard_index=0, start=5, stop=5, attempt=1)
    with pytest.raises(ValueError):
        ShardLease(lease_id="x", shard_index=0, start=-1, stop=4, attempt=1)
