"""Shrinker properties (ISSUE 7 satellite):

(a) a shrunk reproducer still triggers the same oracle flag,
(b) it replays deterministically from its JSON artifact at any worker
    count,
(c) it is never longer than the original scenario.

The properties are exercised over every reproducer a small seeded
campaign finds, not a single hand-picked case.
"""

import json

import pytest

from repro.fuzz.artifact import (
    Reproducer,
    load_reproducer,
    replay,
    replay_in_workers,
)
from repro.fuzz.executor import executor_for
from repro.fuzz.oracle import Oracle
from repro.fuzz.scenario import Scenario, ScenarioStep, SchemeSpec
from repro.fuzz.search import FuzzConfig, ScenarioFuzzer
from repro.fuzz.shrink import shrink

LUD = {"n": 24, "block": 4}
SCHEME = SchemeSpec(verify_interval=3)


@pytest.fixture(scope="module")
def campaign_reproducers():
    config = FuzzConfig(
        benchmark="lud",
        benchmark_params=LUD,
        scheme=SCHEME,
        seed=7,
        budget=25,
    )
    report = ScenarioFuzzer(config).run()
    assert report.reproducers, "seeded campaign must find at least one reproducer"
    return report.reproducers


def test_property_shrunk_still_triggers_same_flag(campaign_reproducers):
    oracle = Oracle(executor_for("lud", LUD))
    for repro in campaign_reproducers:
        assert oracle.matches(repro.scenario, repro.flag.kind)


def test_property_shrunk_no_longer_than_original(campaign_reproducers):
    for repro in campaign_reproducers:
        assert repro.shrunk_len <= repro.original_len
        assert len(repro.scenario) == repro.shrunk_len


def test_property_replays_deterministically_at_any_worker_count(
    campaign_reproducers, tmp_path
):
    repro = campaign_reproducers[0]
    path = repro.save(tmp_path)
    loaded = load_reproducer(path)
    assert loaded.to_dict() == repro.to_dict()
    record, ok = replay(loaded)
    assert ok, "serial replay must be byte-identical"
    assert record.canonical_json() == repro.expected.canonical_json()
    for workers in (2, 4):
        assert replay_in_workers(loaded, workers), (
            f"replay must be byte-identical across {workers} worker processes"
        )


def test_shrink_reduces_padded_scenario():
    # Pad a known escape with irrelevant steps; the shrinker must strip
    # the padding and keep the flag.
    oracle = Oracle(executor_for("lud", LUD))
    escape = ScenarioStep(op="inject", at=5, model="double", resource="matrix")
    padded = Scenario(
        benchmark="lud",
        seed=11,
        steps=(
            ScenarioStep(op="pause_checkpoint", at=0),
            escape,
            ScenarioStep(op="strike_recovery", model="zero"),
        ),
        scheme=SCHEME,
        benchmark_params=LUD,
    )
    assert oracle.matches(padded, "escape")
    minimal, spent = shrink(padded, lambda s: oracle.matches(s, "escape"))
    assert spent > 0
    assert len(minimal) == 1
    assert minimal.steps[0].op == "inject"
    assert oracle.matches(minimal, "escape")


def test_shrink_respects_execution_cap():
    calls = []

    def expensive_predicate(candidate):
        calls.append(candidate)
        return True

    scenario = Scenario(
        benchmark="lud",
        seed=3,
        steps=tuple(ScenarioStep(op="inject", at=i) for i in range(3)),
        scheme=SCHEME,
        benchmark_params=LUD,
    )
    minimal, spent = shrink(scenario, expensive_predicate, max_executions=5)
    assert spent <= 5
    assert len(calls) == spent
    assert len(minimal) <= len(scenario)


def test_artifact_json_is_self_contained(campaign_reproducers, tmp_path):
    repro = campaign_reproducers[0]
    path = repro.save(tmp_path)
    data = json.loads(path.read_text())
    rebuilt = Reproducer.from_dict(data)
    assert rebuilt.scenario.key() == repro.scenario.key()
    assert rebuilt.expected.canonical_json() == repro.expected.canonical_json()
