"""Scenario executor: determinism, scheme semantics, recovery strikes."""

import pytest

from repro.fuzz.executor import ScenarioExecutor, ScenarioRecord, executor_for
from repro.fuzz.scenario import Scenario, ScenarioStep, SchemeSpec

LUD = {"n": 24, "block": 4}


@pytest.fixture(scope="module")
def lud_executor():
    return ScenarioExecutor("lud", LUD)


def _scenario(steps, scheme=SchemeSpec(), seed=11):
    return Scenario(
        benchmark="lud", seed=seed, steps=tuple(steps),
        scheme=scheme, benchmark_params=LUD,
    )


def test_empty_scenario_is_masked(lud_executor):
    record = lud_executor.execute(_scenario([], scheme=SchemeSpec(verify_interval=2)))
    assert record.outcome == "masked"
    assert record.faults == ()
    assert record.executed_steps == lud_executor.total_steps
    assert record.output_digest


def test_execution_is_deterministic(lud_executor):
    scenario = _scenario(
        [
            ScenarioStep(op="inject", at=1, model="random"),
            ScenarioStep(op="dose", at=2, count=3, span=3),
        ],
        scheme=SchemeSpec(verify_interval=3, checkpoint_interval=2),
    )
    a = lud_executor.execute(scenario)
    b = lud_executor.execute(scenario)
    c = ScenarioExecutor("lud", LUD).execute(scenario)
    assert a.canonical_json() == b.canonical_json() == c.canonical_json()


def test_record_roundtrips(lud_executor):
    scenario = _scenario([ScenarioStep(op="inject", at=1)])
    record = lud_executor.execute(scenario)
    assert ScenarioRecord.from_dict(record.to_dict()).canonical_json() == (
        record.canonical_json()
    )


def test_tight_guards_detect_matrix_fault(lud_executor):
    # verify_interval=1 checks every step: a matrix corruption cannot
    # survive to the output silently.
    scenario = _scenario(
        [ScenarioStep(op="inject", at=1, model="random", resource="matrix")],
        scheme=SchemeSpec(verify_interval=1),
    )
    record = lud_executor.execute(scenario)
    assert record.outcome == "detected"
    assert record.detector_events
    assert record.detector_events[0]["action"] == "trip"


def test_weakened_guards_let_fault_escape(lud_executor):
    # verify_interval=3 verifies at steps 0 and 3 only, but resyncs
    # after every step: a fault at step 5 is absorbed into the trusted
    # image and never verified again — the planted escape.  (Seed 11
    # lands this flip in the live matrix; many sites mask.)
    scenario = _scenario(
        [ScenarioStep(op="inject", at=5, model="double", resource="matrix")],
        scheme=SchemeSpec(verify_interval=3),
    )
    record = lud_executor.execute(scenario)
    assert record.outcome == "sdc"
    assert not record.detector_events
    assert record.sdc_wrong_elements >= 1


def test_unguarded_scheme_reports_plain_sdc(lud_executor):
    scenario = _scenario(
        [ScenarioStep(op="inject", at=5, model="double", resource="matrix")],
        scheme=SchemeSpec(guards=False),
    )
    record = lud_executor.execute(scenario)
    assert record.outcome == "sdc"
    assert record.detector_events == ()


def test_fault_content_keyed_by_step_not_position(lud_executor):
    # Dropping an unrelated step must not change what the surviving
    # step does — the shrinker's stability property.
    scheme = SchemeSpec(guards=False)
    keep = ScenarioStep(op="inject", at=4, model="double", resource="matrix")
    drop = ScenarioStep(op="inject", at=1, model="zero", resource="control")
    alone = lud_executor.execute(_scenario([keep], scheme=scheme))
    paired = lud_executor.execute(_scenario([drop, keep], scheme=scheme))
    alone_fault = alone.faults[0]
    kept_fault = next(f for f in paired.faults if f["step"] == 4)
    assert kept_fault == alone_fault


def test_checkpoint_recovers_crash(lud_executor):
    # A pointer fault crashes; checkpoint/restart rolls back and the
    # transient is not re-delivered, so the run completes clean.
    scenario = _scenario(
        [ScenarioStep(op="inject", at=3, model="random", resource="pointer")],
        scheme=SchemeSpec(guards=False, checkpoint_interval=2),
        seed=5,
    )
    record = lud_executor.execute(scenario)
    assert record.recoveries >= 1
    assert record.outcome in ("masked", "sdc")
    assert record.executed_steps > lud_executor.total_steps - 1


def test_strike_during_recovery_fires(lud_executor):
    # Arm a restore strike behind a crashing fault: the strike is
    # delivered on the restored state and tagged during=restore.
    scenario = _scenario(
        [
            ScenarioStep(op="inject", at=3, model="random", resource="pointer"),
            ScenarioStep(op="strike_recovery", model="single", resource="matrix"),
        ],
        scheme=SchemeSpec(guards=False, checkpoint_interval=2),
        seed=5,
    )
    record = lud_executor.execute(scenario)
    if record.recoveries:  # the primary fault crashed, as seeded
        strikes = [f for f in record.faults if f["during"] == "restore"]
        assert len(strikes) == 1
        assert strikes[0]["op"] == "strike_recovery"


def test_strike_without_checkpointing_is_noop(lud_executor):
    scenario = _scenario(
        [ScenarioStep(op="strike_recovery", model="random")],
        scheme=SchemeSpec(verify_interval=2),
    )
    record = lud_executor.execute(scenario)
    assert record.outcome == "masked"
    assert record.faults == ()


def test_pause_checkpoint_limits_snapshots(lud_executor):
    # Pausing capture at step 0 leaves only the step-0 snapshot; a
    # later crash must restart from scratch (more re-executed work
    # than with full checkpointing).
    crash = ScenarioStep(op="inject", at=5, model="random", resource="pointer")
    paused = _scenario(
        [ScenarioStep(op="pause_checkpoint", at=0), crash],
        scheme=SchemeSpec(guards=False, checkpoint_interval=2),
        seed=5,
    )
    full = _scenario(
        [crash],
        scheme=SchemeSpec(guards=False, checkpoint_interval=2),
        seed=5,
    )
    paused_record = lud_executor.execute(paused)
    full_record = lud_executor.execute(full)
    if full_record.recoveries and paused_record.recoveries:
        assert paused_record.executed_steps > full_record.executed_steps


def test_snapshot_roundtrip_probe_is_invisible(lud_executor):
    scenario = _scenario(
        [ScenarioStep(op="inject", at=1, model="double", resource="matrix")],
        scheme=SchemeSpec(verify_interval=3),
    )
    plain = lud_executor.execute(scenario)
    probed = lud_executor.execute(scenario, snapshot_roundtrip_at=3)
    assert plain.canonical_json() == probed.canonical_json()


def test_executor_cache_reuses_instances():
    a = executor_for("lud", LUD)
    b = executor_for("lud", LUD)
    assert a is b


def test_resource_classes_discovered(lud_executor):
    classes = lud_executor.resource_classes()
    assert "matrix" in classes
    assert "control" in classes
    assert "pointer" in classes
