"""Search loop, telemetry counters, failure events, and the CLIs."""

import io
import json

import pytest

from repro.fuzz.cli import main as fuzz_main
from repro.fuzz.scenario import SchemeSpec
from repro.fuzz.search import FuzzConfig, ScenarioFuzzer, run_fuzz_campaign
from repro.telemetry import activate
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import NOOP_TRACER

LUD = {"n": 24, "block": 4}


def _config(**kwargs):
    defaults = dict(
        benchmark="lud",
        benchmark_params=LUD,
        scheme=SchemeSpec(verify_interval=3),
        seed=7,
        budget=12,
    )
    defaults.update(kwargs)
    return FuzzConfig(**defaults)


def test_seeded_campaign_finds_and_shrinks_escape():
    """Acceptance: the planted weakened-detector escape is found and
    shrunk to <= 3 steps."""
    report = ScenarioFuzzer(_config()).run()
    assert report.scenarios_run == 12
    escapes = [r for r in report.reproducers if r.flag.kind == "escape"]
    assert escapes, "no hardening escape found by the seeded campaign"
    assert all(r.shrunk_len <= 3 for r in escapes)
    assert all(r.expected.outcome == "sdc" for r in escapes)
    assert all(not r.expected.detector_events for r in escapes)


def test_campaign_is_deterministic():
    a = ScenarioFuzzer(_config()).run()
    b = ScenarioFuzzer(_config()).run()
    assert [r.scenario.key() for r in a.reproducers] == [
        r.scenario.key() for r in b.reproducers
    ]
    assert a.outcome_counts == b.outcome_counts


def test_counters_and_failure_events():
    registry = MetricsRegistry()
    events = []
    with activate(registry, NOOP_TRACER):
        report = ScenarioFuzzer(_config(), failure_sink=events.append).run()
    counters = registry.counter_values()
    scenarios = counters.get("repro_fuzz_scenarios_total", {})
    assert sum(scenarios.values()) == report.scenarios_run
    shrinks = counters.get("repro_fuzz_shrinks_total", {})
    assert sum(shrinks.values()) >= len(report.reproducers)
    kinds = {e["event"] for e in events}
    assert "fuzz_flag" in kinds
    assert "fuzz_reproducer" in kinds


def test_campaign_workers_split_budget(tmp_path):
    report = run_fuzz_campaign(_config(budget=8, out_dir=str(tmp_path)), workers=2)
    assert report.scenarios_run == 8
    assert report.reproducers
    assert tmp_path.glob("repro-*.json")


def test_config_validation():
    with pytest.raises(ValueError):
        _config(budget=0)
    with pytest.raises(ValueError):
        _config(max_steps=0)
    with pytest.raises(ValueError):
        _config(mutate_share=1.5)
    with pytest.raises(ValueError):
        run_fuzz_campaign(_config(), workers=0)


def _run_cli(*argv):
    stream = io.StringIO()
    code = fuzz_main(list(argv), stream=stream)
    return code, stream.getvalue()


def test_cli_run_replay_show(tmp_path):
    out_dir = tmp_path / "reproducers"
    code, text = _run_cli(
        "run",
        "--benchmark", "lud",
        "--param", "n=24", "--param", "block=4",
        "--verify-interval", "3",
        "--budget", "12",
        "--seed", "7",
        "--out", str(out_dir),
        "--expect", "1",
        "--failure-log", str(tmp_path / "failures.jsonl"),
    )
    assert code == 0, text
    artifacts = sorted(out_dir.glob("repro-*.json"))
    assert artifacts
    failure_lines = [
        json.loads(line)
        for line in (tmp_path / "failures.jsonl").read_text().splitlines()
    ]
    assert any(e["event"] == "fuzz_reproducer" for e in failure_lines)

    code, text = _run_cli("replay", str(artifacts[0]))
    assert code == 0
    assert "byte-identically" in text

    code, text = _run_cli("replay", str(artifacts[0]), "--workers", "2")
    assert code == 0

    code, text = _run_cli("show", str(artifacts[0]))
    assert code == 0
    assert json.loads(text)["scenario"]["benchmark"] == "lud"


def test_cli_expect_failure(tmp_path):
    code, text = _run_cli(
        "run",
        "--benchmark", "lud",
        "--param", "n=24", "--param", "block=4",
        "--budget", "1",
        "--seed", "3",
        "--expect", "99",
    )
    assert code == 1
    assert "FAIL" in text


def test_cli_replay_detects_tampering(tmp_path):
    out_dir = tmp_path / "reproducers"
    code, _text = _run_cli(
        "run",
        "--benchmark", "lud",
        "--param", "n=24", "--param", "block=4",
        "--verify-interval", "3",
        "--budget", "12",
        "--seed", "7",
        "--out", str(out_dir),
        "--expect", "1",
    )
    assert code == 0
    artifact = sorted(out_dir.glob("repro-*.json"))[0]
    data = json.loads(artifact.read_text())
    data["expected"]["output_digest"] = "0" * 64
    artifact.write_text(json.dumps(data))
    code, text = _run_cli("replay", str(artifact))
    assert code == 1
    assert "MISMATCH" in text


def test_inspect_fuzz_lists_reproducers(tmp_path):
    from repro.telemetry.inspect import main as inspect_main

    out_dir = tmp_path / "reproducers"
    code, _text = _run_cli(
        "run",
        "--benchmark", "lud",
        "--param", "n=24", "--param", "block=4",
        "--verify-interval", "3",
        "--budget", "12",
        "--seed", "7",
        "--out", str(out_dir),
    )
    assert code == 0
    stream = io.StringIO()
    code = inspect_main(["fuzz", str(out_dir)], stream=stream)
    assert code == 0
    text = stream.getvalue()
    assert "escape" in text
    assert "lud" in text


def test_inspect_fuzz_empty_dir(tmp_path):
    from repro.telemetry.inspect import main as inspect_main

    code = inspect_main(["fuzz", str(tmp_path)], stream=io.StringIO())
    assert code == 2
