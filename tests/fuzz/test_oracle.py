"""Oracle taxonomy: escapes, divergence, invariants."""

from repro.fuzz.executor import ScenarioExecutor
from repro.fuzz.oracle import Oracle
from repro.fuzz.scenario import Scenario, ScenarioStep, SchemeSpec

LUD = {"n": 24, "block": 4}


def _scenario(steps, scheme, seed=11):
    return Scenario(
        benchmark="lud", seed=seed, steps=tuple(steps),
        scheme=scheme, benchmark_params=LUD,
    )


def _oracle():
    return Oracle(ScenarioExecutor("lud", LUD))


def test_escape_is_flagged():
    oracle = _oracle()
    scenario = _scenario(
        [ScenarioStep(op="inject", at=5, model="double", resource="matrix")],
        SchemeSpec(verify_interval=3),
    )
    record, flag = oracle.evaluate(scenario)
    assert record.outcome == "sdc"
    assert flag is not None
    assert flag.kind == "escape"
    assert oracle.matches(scenario, "escape")


def test_detected_fault_is_not_flagged():
    oracle = _oracle()
    scenario = _scenario(
        [ScenarioStep(op="inject", at=1, model="random", resource="matrix")],
        SchemeSpec(verify_interval=1),
    )
    record, flag = oracle.evaluate(scenario)
    assert record.outcome == "detected"
    assert flag is None


def test_sdc_without_detectors_is_not_an_escape():
    # No detectors deployed -> an SDC is expected behavior, not a finding.
    oracle = _oracle()
    scenario = _scenario(
        [ScenarioStep(op="inject", at=5, model="double", resource="matrix")],
        SchemeSpec(guards=False),
    )
    record, flag = oracle.evaluate(scenario)
    assert record.outcome == "sdc"
    assert flag is None


def test_masked_scenario_is_not_flagged():
    oracle = _oracle()
    scenario = _scenario(
        [ScenarioStep(op="inject", at=1, model="double", resource="matrix")],
        SchemeSpec(verify_interval=3),
    )
    record, flag = oracle.evaluate(scenario)
    assert record.outcome == "masked"
    assert flag is None


def test_oracle_checks_can_be_disabled():
    executor = ScenarioExecutor("lud", LUD)
    oracle = Oracle(executor, check_divergence=False, check_invariants=False)
    scenario = _scenario([], SchemeSpec())
    record, flag = oracle.evaluate(scenario)
    assert record.outcome == "masked"
    assert flag is None
