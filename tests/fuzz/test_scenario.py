"""Scenario grammar: validation, round-trip, identity."""

import pytest

from repro.fuzz.scenario import Scenario, ScenarioStep, SchemeSpec


def _scenario(**kwargs):
    defaults = dict(
        benchmark="lud",
        seed=11,
        steps=(
            ScenarioStep(op="inject", at=2, model="double", resource="matrix"),
            ScenarioStep(op="dose", at=1, count=3, span=4),
        ),
        scheme=SchemeSpec(verify_interval=3),
        benchmark_params={"n": 24, "block": 4},
    )
    defaults.update(kwargs)
    return Scenario(**defaults)


def test_step_validation():
    with pytest.raises(ValueError):
        ScenarioStep(op="explode")
    with pytest.raises(ValueError):
        ScenarioStep(op="inject", model="septuple")
    with pytest.raises(ValueError):
        ScenarioStep(op="inject", at=-1)
    with pytest.raises(ValueError):
        ScenarioStep(op="dose", count=0)
    with pytest.raises(ValueError):
        ScenarioStep(op="dose", span=-1)


def test_scheme_validation():
    with pytest.raises(ValueError):
        SchemeSpec(verify_interval=0)
    with pytest.raises(ValueError):
        SchemeSpec(checkpoint_interval=-1)
    assert SchemeSpec().has_detectors
    assert not SchemeSpec(guards=False).has_detectors
    assert SchemeSpec(guards=False, abft=True).has_detectors


def test_scenario_roundtrip():
    scenario = _scenario()
    clone = Scenario.from_dict(scenario.to_dict())
    assert clone == scenario
    assert clone.key() == scenario.key()


def test_key_is_content_addressed():
    a = _scenario()
    b = _scenario()
    assert a.key() == b.key()
    c = _scenario(seed=12)
    assert c.key() != a.key()
    d = _scenario(steps=a.steps[:1])
    assert d.key() != a.key()


def test_replace_steps_preserves_everything_else():
    scenario = _scenario()
    trimmed = scenario.replace_steps(scenario.steps[:1])
    assert len(trimmed) == 1
    assert trimmed.benchmark == scenario.benchmark
    assert trimmed.seed == scenario.seed
    assert trimmed.scheme == scenario.scheme
    assert trimmed.benchmark_params == scenario.benchmark_params
