"""Thread scheduler slab arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phi.config import PhiConfig
from repro.phi.scheduler import ThreadScheduler


def test_slabs_partition_exactly():
    sched = ThreadScheduler()
    total = 1000
    covered = []
    for thread in range(228):
        slab = sched.slab_of_thread(total, thread)
        covered.extend(range(slab.start, slab.stop))
    assert covered == list(range(total))


def test_slab_sizes_balanced():
    sched = ThreadScheduler()
    sizes = [sched.slab_of_thread(1000, t).size for t in range(228)]
    assert max(sizes) - min(sizes) <= 1


def test_small_arrays_leave_idle_threads():
    sched = ThreadScheduler()
    sizes = [sched.slab_of_thread(10, t).size for t in range(228)]
    assert sum(sizes) == 10
    assert sizes.count(0) == 218


def test_thread_of_element_inverse():
    sched = ThreadScheduler()
    total = 777
    for element in range(0, total, 13):
        thread = sched.thread_of_element(total, element)
        slab = sched.slab_of_thread(total, thread)
        assert slab.start <= element < slab.stop


def test_core_slab_spans_four_threads():
    sched = ThreadScheduler()
    total = 2280
    lo, hi = sched.core_slab(total, thread=5)  # core 1: threads 4..7
    s4 = sched.slab_of_thread(total, 4)
    s7 = sched.slab_of_thread(total, 7)
    assert (lo, hi) == (s4.start, s7.stop)


def test_validation():
    sched = ThreadScheduler()
    with pytest.raises(ValueError):
        sched.slab_of_thread(100, 228)
    with pytest.raises(ValueError):
        sched.slab_of_thread(0, 0)
    with pytest.raises(IndexError):
        sched.thread_of_element(10, 10)


def test_random_thread_in_range(rng):
    sched = ThreadScheduler()
    for _ in range(50):
        assert 0 <= sched.random_thread(rng) < 228


def test_custom_config_thread_count():
    sched = ThreadScheduler(PhiConfig(cores=2, threads_per_core=2))
    with pytest.raises(ValueError):
        sched.slab_of_thread(100, 4)


@settings(max_examples=60, deadline=None)
@given(total=st.integers(1, 5000), element=st.integers(0, 4999))
def test_thread_of_element_consistent(total, element):
    if element >= total:
        element = element % total
    sched = ThreadScheduler()
    thread = sched.thread_of_element(total, element)
    slab = sched.slab_of_thread(total, thread)
    assert slab.start <= element < slab.stop
