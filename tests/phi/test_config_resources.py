"""KNC configuration and resource inventory."""

from repro.phi.config import KNC_3120A, PhiConfig
from repro.phi.resources import RESOURCE_INVENTORY, ResourceClass


def test_3120a_parameters_match_paper():
    cfg = KNC_3120A
    assert cfg.cores == 57
    assert cfg.threads_per_core == 4
    assert cfg.hardware_threads == 228
    assert cfg.vector_register_bits == 512
    assert cfg.vector_registers_per_thread == 32
    assert cfg.gddr_gb == 6
    assert cfg.l1_kb_per_core == 64
    assert cfg.l2_kb_per_core == 512
    assert cfg.process_nm == 22
    assert cfg.ecc_enabled


def test_totals():
    cfg = KNC_3120A
    assert cfg.vector_register_bits_total == 228 * 32 * 512
    assert cfg.l2_bits_total == 57 * 512 * 1024 * 8
    assert cfg.l1_bits_total == 57 * 64 * 1024 * 8


def test_custom_config():
    cfg = PhiConfig(cores=2, threads_per_core=2)
    assert cfg.hardware_threads == 4


def test_inventory_covers_all_resources():
    assert set(RESOURCE_INVENTORY) == set(ResourceClass.all())


def test_caches_are_the_only_ecc_protected_resources():
    protected = {r for r, spec in RESOURCE_INVENTORY.items() if spec.ecc_protected}
    assert protected == {ResourceClass.L1_CACHE, ResourceClass.L2_CACHE}


def test_every_spec_has_description():
    assert all(spec.description for spec in RESOURCE_INVENTORY.values())
