"""SECDED ECC model."""

import numpy as np
import pytest

from repro.phi.ecc import EccOutcome, classify_upset, sample_upset_size
from repro.util.rng import derive_rng


def test_single_bit_corrected():
    assert classify_upset(1) is EccOutcome.CORRECTED


def test_double_bit_detected_is_due():
    # "SECDED ECC normally triggers application crash when a double bit
    # error is detected."
    assert classify_upset(2) is EccOutcome.DETECTED


@pytest.mark.parametrize("bits", [3, 4, 7])
def test_multi_bit_escapes(bits):
    assert classify_upset(bits) is EccOutcome.ESCAPED


def test_ecc_disabled_everything_escapes():
    for bits in (1, 2, 3):
        assert classify_upset(bits, ecc_enabled=False) is EccOutcome.ESCAPED


def test_zero_bits_rejected():
    with pytest.raises(ValueError):
        classify_upset(0)


def test_upset_size_distribution():
    rng = derive_rng(4, "ecc")
    sizes = np.array([sample_upset_size(rng) for _ in range(3000)])
    assert set(np.unique(sizes)) <= {1, 2, 3, 4}
    # Single-bit events dominate (92% nominal).
    assert (sizes == 1).mean() > 0.85
    assert (sizes >= 2).mean() > 0.02


def test_upset_size_deterministic():
    a = [sample_upset_size(derive_rng(1, "s")) for _ in range(5)]
    b = [sample_upset_size(derive_rng(1, "s")) for _ in range(5)]
    assert a == b
