"""Strike-effect machine on real benchmark state."""

import numpy as np
import pytest

from repro.benchmarks.registry import create
from repro.phi.machine import (
    MachineCheckError,
    SchedulerWedge,
    XeonPhiMachine,
)
from repro.phi.resources import ResourceClass
from repro.util.rng import derive_rng


@pytest.fixture
def machine() -> XeonPhiMachine:
    return XeonPhiMachine()


@pytest.fixture
def bench():
    return create("dgemm")


@pytest.fixture
def state(bench):
    state = bench.make_state(derive_rng(55, "machine-test"))
    bench.step(state, 0)
    bench.step(state, 1)
    return state


def _snapshot(bench, state):
    return {v.name: v.array.copy() for v in bench.variables(state, 5)}


def _changed_names(bench, state, before):
    changed = []
    for var in bench.variables(state, 5):
        now = var.array.reshape(-1).view(np.uint8)
        then = before[var.name].reshape(-1).view(np.uint8)
        if not np.array_equal(now, then):
            changed.append(var.name)
    return changed


def _apply_until(machine, bench, state, resource, wanted_effect, max_tries=200):
    for seed in range(max_tries):
        rng = derive_rng(seed, "strike", resource.value)
        try:
            result = machine.apply_strike(bench, state, 5, resource, rng)
        except (MachineCheckError, SchedulerWedge):
            continue
        if result.effect == wanted_effect:
            return result
    pytest.fail(f"effect {wanted_effect} never sampled for {resource}")


def test_vector_register_flips_contiguous_lanes(machine, bench, state):
    before = _snapshot(bench, state)
    result = _apply_until(machine, bench, state, ResourceClass.VECTOR_REGISTER, "lane_flips")
    victim = result.detail["variable"]
    changed = _changed_names(bench, state, before)
    assert changed == [victim]
    elements = result.detail["elements"]
    assert 1 <= len(elements) <= 512 // 64
    assert elements == sorted(elements)


def test_scalar_register_hits_stack_class(machine, bench, state):
    result = machine.apply_strike(
        bench, state, 5, ResourceClass.SCALAR_REGISTER, derive_rng(1, "sr")
    )
    assert result.effect == "register_flip"
    stack_names = {
        v.name
        for v in bench.variables(state, 5)
        if v.var_class in ("control", "constant", "pointer")
    }
    assert result.detail["variable"] in stack_names


def test_cache_single_bit_corrected_is_noop(machine, bench, state):
    before = _snapshot(bench, state)
    result = _apply_until(machine, bench, state, ResourceClass.L2_CACHE, "ecc_corrected")
    assert result.detail["bits"] == 1
    assert _changed_names(bench, state, before) == []


def test_cache_double_bit_raises_machine_check(machine, bench, state):
    raised = False
    for seed in range(300):
        try:
            machine.apply_strike(
                bench, state, 5, ResourceClass.L2_CACHE, derive_rng(seed, "mca")
            )
        except MachineCheckError:
            raised = True
            break
    assert raised


def test_cache_wrong_line_copies_within_array(machine, bench, state):
    result = _apply_until(machine, bench, state, ResourceClass.L1_CACHE, "wrong_line")
    detail = result.detail
    var = {v.name: v for v in bench.variables(state, 5)}[detail["variable"]]
    flat = var.array.reshape(-1)
    np.testing.assert_array_equal(
        flat[detail["start"] : detail["start"] + detail["elements"]],
        flat[detail["source"] : detail["source"] + detail["elements"]],
    )


def test_fpu_garbles_one_element(machine, bench, state):
    before = _snapshot(bench, state)
    result = machine.apply_strike(
        bench, state, 5, ResourceClass.FPU_LOGIC, derive_rng(3, "fpu")
    )
    assert result.effect == "garbage_result"
    assert _changed_names(bench, state, before) == [result.detail["variable"]]


def test_pipeline_can_hit_control_or_data(machine, bench, state):
    effects = set()
    for seed in range(60):
        result = machine.apply_strike(
            bench, state, 5, ResourceClass.PIPELINE_QUEUE, derive_rng(seed, "pq")
        )
        effects.add(result.effect)
    assert effects == {"control_flip", "data_garble"}


def test_dispatch_wedge_raises(machine, bench, state):
    raised = False
    for seed in range(60):
        try:
            machine.apply_strike(
                bench, state, 5, ResourceClass.DISPATCH_SCHEDULER, derive_rng(seed, "dw")
            )
        except SchedulerWedge:
            raised = True
            break
    assert raised


def test_dispatch_tile_skew_moves_core_slab(machine, bench, state):
    result = _apply_until(
        machine, bench, state, ResourceClass.DISPATCH_SCHEDULER, "tile_skew"
    )
    assert result.detail["hi"] > result.detail["lo"]


def test_interconnect_mca_or_wrong_line(machine, bench, state):
    effects = set()
    for seed in range(60):
        try:
            result = machine.apply_strike(
                bench, state, 5, ResourceClass.INTERCONNECT, derive_rng(seed, "ic")
            )
            effects.add(result.effect)
        except MachineCheckError:
            effects.add("mca")
    assert "mca" in effects and "wrong_line" in effects


def test_strike_determinism(machine, bench):
    outcomes = []
    for _ in range(2):
        state = bench.make_state(derive_rng(55, "machine-test"))
        bench.step(state, 0)
        bench.step(state, 1)
        result = machine.apply_strike(
            bench, state, 5, ResourceClass.FPU_LOGIC, derive_rng(9, "det")
        )
        outcomes.append((result.effect, result.detail["element"]))
    assert outcomes[0] == outcomes[1]


def test_unknown_resource_rejected(machine, bench, state):
    with pytest.raises(ValueError):
        machine.apply_strike(bench, state, 5, "warp_core", derive_rng(1, "x"))
