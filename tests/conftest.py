"""Shared fixtures for the test suite.

Campaign fixtures are session-scoped and deliberately small: they give
the analysis/hardening/experiment tests real records to chew on without
re-running injections per test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.carolfi.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.beam.experiment import BeamCampaignResult, BeamExperiment
from repro.util.rng import derive_rng

#: Small-but-fast CLAMR configuration used across benchmark tests.
SMALL_CLAMR = {
    "base": 4,
    "max_level": 1,
    "capacity": 120,
    "timesteps": 3,
    "leaf_size": 4,
}


@pytest.fixture
def rng() -> np.random.Generator:
    return derive_rng(1234, "tests")


@pytest.fixture(scope="session")
def dgemm_campaign() -> CampaignResult:
    """A small real injection campaign on DGEMM."""
    return run_campaign(CampaignConfig(benchmark="dgemm", injections=120, seed=99))


@pytest.fixture(scope="session")
def nw_campaign() -> CampaignResult:
    """A small real injection campaign on NW."""
    return run_campaign(CampaignConfig(benchmark="nw", injections=120, seed=99))


@pytest.fixture(scope="session")
def dgemm_beam() -> BeamCampaignResult:
    """A small real beam campaign on DGEMM."""
    return BeamExperiment("dgemm", seed=77).run_campaign(150)
