"""Log parser CLI and per-resource FIT attribution."""

import io

import pytest

from repro.beam.experiment import BeamExperiment
from repro.beam.fit import fit_by_resource
from repro.carolfi.campaign import CampaignConfig, run_campaign
from repro.faults.outcome import Outcome
from repro.logtools import main, summarize_beam_log, summarize_injection_log


@pytest.fixture(scope="module")
def injection_log(tmp_path_factory):
    path = tmp_path_factory.mktemp("logs") / "inj.jsonl"
    run_campaign(CampaignConfig(benchmark="lud", injections=60, seed=4), log_path=path)
    return path


@pytest.fixture(scope="module")
def beam_log(tmp_path_factory):
    path = tmp_path_factory.mktemp("logs") / "beam.jsonl"
    BeamExperiment("lud", seed=4).run_campaign(120, log_path=path)
    return path


def test_injection_summary_sections(injection_log):
    buf = io.StringIO()
    summarize_injection_log([str(injection_log)], buf)
    text = buf.getvalue()
    assert "lud: 60 injections" in text
    assert "outcomes:" in text
    assert "PVF %" in text
    assert "SDC by window" in text
    assert "portion" in text


def test_beam_summary_sections(beam_log):
    buf = io.StringIO()
    summarize_beam_log([str(beam_log)], buf)
    text = buf.getvalue()
    assert "strike trials" in text
    assert "FIT" in text
    assert "SDCs by resource" in text


def test_cli_injection(injection_log, capsys):
    assert main(["injection", str(injection_log)]) == 0
    assert "injections" in capsys.readouterr().out


def test_cli_beam(beam_log, capsys):
    assert main(["beam", str(beam_log)]) == 0
    assert "strike trials" in capsys.readouterr().out


def test_empty_log_rejected(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(SystemExit):
        summarize_injection_log([str(empty)], io.StringIO())
    with pytest.raises(SystemExit):
        summarize_beam_log([str(empty)], io.StringIO())


def test_fit_by_resource_partitions_outcome(dgemm_beam):
    by_resource = fit_by_resource(dgemm_beam, Outcome.SDC)
    from repro.beam.fit import estimate_fit

    total = estimate_fit(dgemm_beam).sdc.fit
    assert sum(e.fit for e in by_resource.values()) == pytest.approx(total)
    # Sorted by contribution, descending.
    fits = [e.fit for e in by_resource.values()]
    assert fits == sorted(fits, reverse=True)


def test_fit_by_resource_empty_campaign():
    from repro.beam.experiment import BeamCampaignResult
    from repro.beam.sensitivity import DEFAULT_SENSITIVITY

    with pytest.raises(ValueError):
        fit_by_resource(
            BeamCampaignResult("x", [], DEFAULT_SENSITIVITY), Outcome.SDC
        )


def test_injection_summary_includes_severity(injection_log):
    buf = io.StringIO()
    summarize_injection_log([str(injection_log)], buf)
    assert "SDC severity" in buf.getvalue()


def test_beam_summary_includes_severity(beam_log):
    buf = io.StringIO()
    summarize_beam_log([str(beam_log)], buf)
    assert "SDC severity" in buf.getvalue()
