"""Runner CLI and paper reference tables."""

import io

import pytest

from repro.benchmarks.registry import BEAM_BENCHMARKS, INJECTION_BENCHMARKS
from repro.experiments import paper
from repro.experiments.runner import EXPERIMENTS, main, run_experiments


def test_experiment_registry_order():
    assert list(EXPERIMENTS) == [
        "figure2",
        "figure3",
        "figure4",
        "figure5",
        "figure6",
        "criticality",
        "extrapolation",
        "mitigation",
        "futurework",
        "propagation",
    ]


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "figure2" in out and "mitigation" in out


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_experiments(["figure99"], scale=0.05)


def test_run_single_experiment_streams_output():
    stream = io.StringIO()
    run_experiments(["extrapolation"], seed=3, scale=0.04, stream=stream)
    text = stream.getvalue()
    assert "### extrapolation" in text
    assert "Trinity" in text


def test_paper_figure2_covers_beam_benchmarks():
    assert set(paper.FIGURE2_FIT) == set(BEAM_BENCHMARKS)
    for sdc, due in paper.FIGURE2_FIT.values():
        assert sdc > 0 and due > 0


def test_paper_figure4_covers_all_benchmarks():
    assert set(paper.FIGURE4_SHARES) == set(INJECTION_BENCHMARKS)
    for shares in paper.FIGURE4_SHARES.values():
        assert sum(shares) == pytest.approx(100.0, abs=5.0)


def test_paper_text_claims_present():
    assert paper.TEXT_CLAIMS["max_fit"] == 193.0
    assert paper.TEXT_CLAIMS["trinity_boards"] == 19_000
    assert paper.TEXT_CLAIMS["natural_years_covered"] == 57_000
    assert paper.TEXT_CLAIMS["injection_count_per_benchmark"] == 10_000


def test_paper_criticality_anchor_values():
    assert paper.SECTION6_CRITICALITY["dgemm"]["control"] == (38.0, 38.0)
    assert paper.SECTION6_CRITICALITY["clamr"]["sort"] == (39.0, 43.0)
    assert paper.SECTION6_CRITICALITY["lud"]["matrices"] == (54.0, 28.0)
