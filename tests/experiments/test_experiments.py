"""Experiment harness: every figure module runs and renders."""

import pytest

from repro.benchmarks.registry import BEAM_BENCHMARKS, INJECTION_BENCHMARKS
from repro.experiments import (
    criticality,
    extrapolation,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    mitigation,
)
from repro.experiments.data import ExperimentData
from repro.faults.outcome import Outcome


@pytest.fixture(scope="module")
def data() -> ExperimentData:
    """Tiny shared campaigns: enough to exercise every figure path."""
    return ExperimentData(seed=31, scale=0.04)


def test_data_scaling():
    assert ExperimentData(scale=1.0).beam_trials == 1500
    assert ExperimentData(scale=1.0).injections == 1600
    assert ExperimentData(scale=0.001).injections == 50  # floor
    with pytest.raises(ValueError):
        ExperimentData(scale=0.0)


def test_data_caches_campaigns(data):
    first = data.injection("lud")
    second = data.injection("lud")
    assert first is second


def test_data_rejects_wrong_subsets(data):
    with pytest.raises(KeyError):
        data.beam("nw")  # NW was never irradiated
    with pytest.raises(KeyError):
        data.injection("linpack")


def test_figure2_reports_all_beam_benchmarks(data):
    result = figure2.run(data)
    assert set(result.reports) == set(BEAM_BENCHMARKS)
    for report in result.reports.values():
        assert report.sdc.fit >= 0
        assert report.due.fit >= 0
    text = figure2.render(result)
    assert "Figure 2" in text and "dgemm" in text and "paper SDC" in text


def test_figure2_single_element_fraction_low(data):
    result = figure2.run(data)
    # Section 4.3: <10% of corrupted executions have one wrong element;
    # at tiny campaign sizes allow slack but require a clear minority.
    for name, fraction in result.single_element_fraction.items():
        assert fraction <= 0.5, name


def test_figure3_curves_monotone(data):
    result = figure3.run(data)
    assert set(result.curves) == set(BEAM_BENCHMARKS)
    for curve in result.curves.values():
        reductions = [red for _, red in curve]
        assert reductions == sorted(reductions)
    assert "mantissa" in figure3.render(result)


def test_figure4_shares(data):
    result = figure4.run(data)
    assert set(result.shares) == set(INJECTION_BENCHMARKS)
    for shares in result.shares.values():
        assert sum(shares.values()) == pytest.approx(1.0)
    assert "masked" in figure4.render(result)


def test_figure5_pvf_tables(data):
    result = figure5.run(data)
    for table in (result.sdc, result.due):
        assert set(table) == set(INJECTION_BENCHMARKS)
        for by_model in table.values():
            assert set(by_model) <= {"single", "double", "random", "zero"}
            assert all(0.0 <= v <= 100.0 for v in by_model.values())
    assert "Figure 5a" in figure5.render(result)


def test_figure6_windows_match_benchmarks(data):
    result = figure6.run(data)
    assert "lavamd" not in result.sdc
    assert len(result.sdc["clamr"]) <= 9
    assert len(result.sdc["lud"]) <= 4
    peak = result.peak_window("clamr", Outcome.SDC)
    assert 0 <= peak < 9
    assert "Figure 6a" in figure6.render(result)


def test_criticality_tables(data):
    result = criticality.run(data)
    assert set(result.portions) == set(INJECTION_BENCHMARKS)
    most = result.most_critical("dgemm")
    assert most in ("matrices", "control")
    assert "portion" in criticality.render(result)


def test_extrapolation(data):
    result = extrapolation.run(data)
    assert set(result.trinity) == set(BEAM_BENCHMARKS)
    for projections in result.trinity.values():
        for projection in projections.values():
            assert projection.boards == 19_000
            assert projection.mtbf_hours > 0
    assert "Trinity" in extrapolation.render(result)


def test_mitigation(data):
    result = mitigation.run(data)
    assert set(result.abft) == set(BEAM_BENCHMARKS)
    assert set(result.coverage) == set(INJECTION_BENCHMARKS)
    for report in result.coverage.values():
        assert 0.0 <= report.coverage_fraction <= 1.0
        assert report.expected_detections <= report.covered_faults + 1e-9
    assert "ABFT" in mitigation.render(result)
