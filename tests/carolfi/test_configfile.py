"""Artifact-style config files (Appendix A.4 workflow)."""

import pytest

from repro.carolfi.configfile import load_config, main, run_from_config
from repro.carolfi.flipscript import SitePolicy
from repro.faults.models import FaultModel

_CONFIG = """
[carol-fi]
benchmark = nw
injections = 30
seed = 5
fault_models = single, zero
policy = footprint
watchdog_factor = 12.5
log = {log}

[benchmark.params]
n = 16
rows_per_step = 4
"""


@pytest.fixture
def config_path(tmp_path):
    path = tmp_path / "nw.conf"
    path.write_text(_CONFIG.format(log=tmp_path / "nw.jsonl"))
    return path


def test_load_config_full(config_path, tmp_path):
    config, log_path = load_config(config_path)
    assert config.benchmark == "nw"
    assert config.injections == 30
    assert config.seed == 5
    assert config.fault_models == (FaultModel.SINGLE, FaultModel.ZERO)
    assert config.policy is SitePolicy.FOOTPRINT
    assert config.watchdog_factor == 12.5
    assert config.benchmark_params == {"n": 16, "rows_per_step": 4}
    assert log_path == tmp_path / "nw.jsonl"


def test_defaults_when_minimal(tmp_path):
    path = tmp_path / "min.conf"
    path.write_text("[carol-fi]\nbenchmark = lud\n")
    config, log_path = load_config(path)
    assert config.injections == 1000
    assert config.fault_models == FaultModel.all()
    assert config.policy is SitePolicy.WEIGHTED
    assert log_path is None


def test_missing_file():
    with pytest.raises(FileNotFoundError):
        load_config("/nonexistent/path.conf")


def test_missing_section(tmp_path):
    path = tmp_path / "bad.conf"
    path.write_text("[other]\nx = 1\n")
    with pytest.raises(ValueError):
        load_config(path)


def test_unknown_benchmark(tmp_path):
    path = tmp_path / "bad.conf"
    path.write_text("[carol-fi]\nbenchmark = linpack\n")
    with pytest.raises(ValueError):
        load_config(path)


def test_run_from_config_writes_log(config_path, tmp_path):
    result = run_from_config(config_path, repetitions=12)
    assert len(result) == 12
    assert result.config.benchmark_params["n"] == 16
    assert (tmp_path / "nw.jsonl").exists()
    from repro.carolfi.logparse import load_injection_log

    assert len(load_injection_log(tmp_path / "nw.jsonl")) == 12


def test_repetitions_validated(config_path):
    with pytest.raises(ValueError):
        run_from_config(config_path, repetitions=0)


def test_cli(config_path, capsys):
    assert main([str(config_path), "8"]) == 0
    out = capsys.readouterr().out
    assert "nw: 8 injections" in out
    assert "masked" in out


def test_repetitions_preserve_other_settings(config_path):
    result = run_from_config(config_path, repetitions=8)
    assert result.config.seed == 5
    assert result.config.fault_models == (FaultModel.SINGLE, FaultModel.ZERO)


def test_target_ci_option(tmp_path):
    path = tmp_path / "nw.conf"
    path.write_text(
        "[carol-fi]\nbenchmark = nw\ninjections = 30\ntarget_ci = 0.05\n"
        "\n[benchmark.params]\nn = 16\nrows_per_step = 4\n"
    )
    config, _ = load_config(path)
    assert config.target_ci == 0.05


def test_target_ci_defaults_to_none(config_path):
    config, _ = load_config(config_path)
    assert config.target_ci is None
