"""Flip-script variable selection policies."""

import numpy as np
import pytest

from repro.benchmarks.base import Variable
from repro.carolfi.flipscript import STACK_CLASSES, FlipScript, SitePolicy
from repro.util.rng import derive_rng


def _variables():
    return [
        Variable("big", np.zeros(1000), frame="global", var_class="matrix"),
        Variable("small", np.zeros(10), frame="global", var_class="matrix"),
        Variable("ctl", np.zeros(4, dtype=np.int64), frame="kernel", var_class="control"),
        Variable("ptr", np.zeros(2, dtype=np.int64), frame="kernel", var_class="pointer"),
    ]


def test_stack_classes():
    assert STACK_CLASSES == {"control", "constant", "pointer"}


def test_footprint_prefers_big_arrays():
    script = FlipScript(SitePolicy.FOOTPRINT)
    rng = derive_rng(1, "fp")
    picks = [script.select(_variables(), rng)[0].name for _ in range(300)]
    assert picks.count("big") > 250


def test_weighted_honours_stack_share():
    script = FlipScript(SitePolicy.WEIGHTED)
    rng = derive_rng(2, "w")
    picks = [
        script.select(_variables(), rng, stack_share=0.5)[0].var_class
        for _ in range(600)
    ]
    stack = sum(1 for c in picks if c in STACK_CLASSES)
    assert 0.4 < stack / 600 < 0.6


def test_weighted_zero_share_never_picks_stack():
    script = FlipScript(SitePolicy.WEIGHTED)
    rng = derive_rng(3, "w0")
    for _ in range(100):
        var, _ = script.select(_variables(), rng, stack_share=0.0)
        assert var.var_class not in STACK_CLASSES


def test_weighted_full_share_always_picks_stack():
    script = FlipScript(SitePolicy.WEIGHTED)
    rng = derive_rng(4, "w1")
    for _ in range(100):
        var, _ = script.select(_variables(), rng, stack_share=1.0)
        assert var.var_class in STACK_CLASSES


def test_weighted_without_stack_falls_back_to_heap():
    script = FlipScript(SitePolicy.WEIGHTED)
    heap_only = [v for v in _variables() if v.var_class == "matrix"]
    var, _ = script.select(heap_only, derive_rng(5, "f"), stack_share=1.0)
    assert var.var_class == "matrix"


def test_weighted_share_validated():
    script = FlipScript(SitePolicy.WEIGHTED)
    with pytest.raises(ValueError):
        script.select(_variables(), derive_rng(6, "v"), stack_share=1.5)


def test_frame_uniform_covers_frames():
    script = FlipScript(SitePolicy.FRAME_UNIFORM)
    rng = derive_rng(7, "fu")
    frames = {script.select(_variables(), rng)[0].frame for _ in range(100)}
    assert frames == {"global", "kernel"}


def test_element_within_bounds():
    script = FlipScript()
    rng = derive_rng(8, "e")
    for _ in range(100):
        var, element = script.select(_variables(), rng)
        assert 0 <= element < var.size


def test_empty_variable_list_rejected():
    with pytest.raises(ValueError):
        FlipScript().select([], derive_rng(9, "x"))


def test_zero_size_variables_skipped():
    variables = [Variable("empty", np.zeros(0), frame="f", var_class="matrix")]
    with pytest.raises(ValueError):
        FlipScript().select(variables, derive_rng(10, "z"))


def test_deterministic_selection():
    script = FlipScript()
    a = script.select(_variables(), derive_rng(11, "d"))
    b = script.select(_variables(), derive_rng(11, "d"))
    assert a[0].name == b[0].name and a[1] == b[1]
