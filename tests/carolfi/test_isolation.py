"""Process-isolated injection sandbox: observed deaths, kills, quarantine.

The chaos benchmark misbehaves only on runs whose injection corrupts its
trigger word to a non-zero value, so every campaign here has a *benign
twin* (``failure="none"``) with bit-identical records for all other
runs.  The acceptance bar: a campaign whose benchmark raises genuinely
uncatchable conditions completes, with the offending runs recorded as
DUEs carrying a ``sandbox:`` detail and everything else untouched.
"""

import os

import pytest

from repro.benchmarks.base import window_of_step
from repro.carolfi.campaign import CampaignConfig, run_campaign
from repro.carolfi.engine import read_failure_log
from repro.carolfi.isolation import (
    InjectionSandbox,
    IsolationConfig,
    IsolationMode,
    SandboxError,
    make_due_record,
    rss_bytes,
)
from repro.faults.models import FaultModel
from repro.faults.outcome import DueKind, Outcome

SUBPROC = IsolationConfig(mode=IsolationMode.SUBPROCESS)


def chaos_config(failure: str, injections: int = 16, **extra) -> CampaignConfig:
    params = {"n": 64, "steps": 6, "failure": failure}
    params.update(extra)
    return CampaignConfig(benchmark="chaos", injections=injections, seed=5, benchmark_params=params)


@pytest.fixture(scope="module")
def clean_twin():
    """Serial in-process campaign of the benign chaos twin."""
    return run_campaign(chaos_config("none"))


def assert_matches_twin_except_sandbox_dues(result, clean_twin):
    """Acceptance check: sandbox DUEs on trigger runs, all else identical."""
    sandbox_dues = []
    for twin, record in zip(clean_twin.records, result.records):
        if record.outcome is Outcome.DUE and record.due_detail.startswith("sandbox:"):
            sandbox_dues.append(record)
            # Only a corrupted trigger can misbehave.
            assert twin.site.variable == "trigger"
        else:
            assert record.to_dict() == twin.to_dict()
    assert sandbox_dues, "campaign never hit the trigger; test is vacuous"
    return sandbox_dues


# -- config validation ---------------------------------------------------------


def test_isolation_config_validation():
    assert IsolationConfig().mode is IsolationMode.INPROC
    assert IsolationConfig(mode="subprocess").mode is IsolationMode.SUBPROCESS
    with pytest.raises(ValueError):
        IsolationConfig(timeout_s=0)
    with pytest.raises(ValueError):
        IsolationConfig(mem_limit_mb=-1)
    with pytest.raises(ValueError):
        IsolationConfig(max_run_deaths=0)
    with pytest.raises(ValueError):
        IsolationConfig(mode="gdb")


def test_isolation_config_round_trips_to_dict():
    cfg = IsolationConfig(mode="subprocess", timeout_s=9.0, mem_limit_mb=128)
    d = cfg.to_dict()
    assert d["mode"] == "subprocess"
    assert d["timeout_s"] == 9.0
    assert IsolationConfig(**d) == cfg


# -- synthetic DUE records -----------------------------------------------------


def test_make_due_record_re_derives_interrupt_step(clean_twin):
    config = chaos_config("none")
    for twin in clean_twin.records[:4]:
        record = make_due_record(
            config,
            twin.run_index,
            FaultModel(twin.fault_model),
            twin.total_steps,
            twin.num_windows,
            DueKind.HANG,
            "sandbox: test",
        )
        # Same run stream => same interrupt step and time window as the
        # run would have drawn had it survived to report them.
        assert record.interrupt_step == twin.interrupt_step
        assert record.time_window == twin.time_window
        assert record.time_window == window_of_step(
            record.interrupt_step, record.total_steps, record.num_windows
        )
        assert record.outcome is Outcome.DUE
        assert record.site.variable == "unknown"


# -- clean benchmark: sandbox is transparent -----------------------------------


def test_sandbox_records_match_inproc_for_clean_benchmark():
    config = CampaignConfig(
        benchmark="nw", injections=8, seed=13, benchmark_params={"n": 16, "rows_per_step": 4}
    )
    inproc = run_campaign(config)
    sandboxed = run_campaign(config, workers=1, shard_size=4, isolation=SUBPROC)
    assert [r.to_dict() for r in sandboxed.records] == [r.to_dict() for r in inproc.records]


def test_sandbox_run_one_direct():
    config = chaos_config("none")
    with InjectionSandbox(config) as sandbox:
        record = sandbox.run_one(0, FaultModel.SINGLE)
    assert record.benchmark == "chaos"
    assert record.run_index == 0


# -- uncatchable failure modes (the acceptance criteria) -----------------------


def test_hard_exit_is_quarantined_as_crash_due(tmp_path, clean_twin):
    """``os._exit(86)`` kills the worker; the run ends up a DUE, twice-tried."""
    log = tmp_path / "failures.jsonl"
    result = run_campaign(
        chaos_config("exit"), workers=1, shard_size=4, isolation=SUBPROC, failure_log=log
    )
    dues = assert_matches_twin_except_sandbox_dues(result, clean_twin)
    assert any("quarantined" in r.due_detail for r in dues)
    assert all(r.due_kind is DueKind.CRASH for r in dues if "exit code 86" in r.due_detail)
    events, skipped = read_failure_log(log)
    assert skipped == 0
    kinds = [e["event"] for e in events]
    assert "sandbox_death" in kinds and "sandbox_quarantine" in kinds
    deaths = [e for e in events if e["event"] == "sandbox_death"]
    assert max(e["deaths"] for e in deaths) == SUBPROC.max_run_deaths


def test_signal_death_classified_as_crash(clean_twin):
    """``os.abort()`` dies with SIGABRT; the detail names the signal."""
    result = run_campaign(chaos_config("abort"), workers=1, shard_size=4, isolation=SUBPROC)
    dues = assert_matches_twin_except_sandbox_dues(result, clean_twin)
    assert any("SIGABRT" in r.due_detail for r in dues)
    assert all(r.due_kind is DueKind.CRASH for r in dues)


def test_guard_free_spin_killed_at_deadline_as_hang(clean_twin):
    """A busy loop that never re-enters a guard only dies at the hard kill."""
    iso = IsolationConfig(mode=IsolationMode.SUBPROCESS, timeout_s=1.0)
    result = run_campaign(chaos_config("spin", spin_s=60.0), workers=1, shard_size=4, isolation=iso)
    dues = assert_matches_twin_except_sandbox_dues(result, clean_twin)
    assert all(r.due_kind is DueKind.HANG for r in dues)
    assert all("wall-clock deadline" in r.due_detail for r in dues)


def test_runaway_allocation_killed_at_rss_ceiling_as_oom(clean_twin):
    if rss_bytes(os.getpid()) is None:
        pytest.skip("no /proc RSS accounting on this platform")
    iso = IsolationConfig(mode=IsolationMode.SUBPROCESS, mem_limit_mb=200)
    result = run_campaign(
        chaos_config("alloc", alloc_cap_mb=600), workers=1, shard_size=4, isolation=iso
    )
    dues = assert_matches_twin_except_sandbox_dues(result, clean_twin)
    assert all(r.due_kind is DueKind.OOM for r in dues)
    assert all("ceiling" in r.due_detail for r in dues)


def test_parallel_sandbox_campaign_matches_twin(clean_twin):
    """Acceptance: pool + sandbox completes; non-poison records identical."""
    result = run_campaign(chaos_config("abort"), workers=2, shard_size=4, isolation=SUBPROC)
    assert_matches_twin_except_sandbox_dues(result, clean_twin)


# -- sandbox infrastructure failures ------------------------------------------


def test_unknown_benchmark_raises_sandbox_error():
    config = CampaignConfig(benchmark="no-such-benchmark", injections=1, seed=1)
    sandbox = InjectionSandbox(config)
    with pytest.raises(SandboxError):
        sandbox.run_one(0, FaultModel.SINGLE)
    sandbox.close()


def test_deadline_and_metadata_survive_worker_death():
    """Geometry stays available after a kill (no respawn just to classify)."""
    config = chaos_config("none")
    with InjectionSandbox(config) as sandbox:
        steps = sandbox.total_steps
        windows = sandbox.num_windows
        assert sandbox.hard_deadline_s > 0
        sandbox._teardown()
        assert sandbox.total_steps == steps
        assert sandbox.num_windows == windows
