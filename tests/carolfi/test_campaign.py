"""Campaign driver and aggregations."""

import pytest

from repro.carolfi.campaign import CampaignConfig, run_campaign
from repro.carolfi.logparse import load_injection_log, merge_logs
from repro.faults.models import FaultModel
from repro.faults.outcome import Outcome


def test_config_validation():
    with pytest.raises(ValueError):
        CampaignConfig(benchmark="dgemm", injections=0)
    with pytest.raises(ValueError):
        CampaignConfig(benchmark="dgemm", fault_models=())


def test_models_rotate_evenly(dgemm_campaign):
    by_model = dgemm_campaign.by_fault_model()
    counts = {m: len(v) for m, v in by_model.items()}
    assert set(counts) == {m.value for m in FaultModel.all()}
    assert max(counts.values()) - min(counts.values()) == 0  # 120 % 4 == 0


def test_outcome_fractions_sum_to_one(dgemm_campaign):
    fractions = dgemm_campaign.outcome_fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)
    assert set(fractions) == {"masked", "sdc", "due"}


def test_count_consistency(dgemm_campaign):
    total = sum(dgemm_campaign.count(o) for o in Outcome.all())
    assert total == len(dgemm_campaign)


def test_by_time_window_covers_range(dgemm_campaign):
    windows = dgemm_campaign.by_time_window()
    assert set(windows) <= set(range(5))
    assert sum(len(v) for v in windows.values()) == len(dgemm_campaign)


def test_by_var_class_partitions(dgemm_campaign):
    classes = dgemm_campaign.by_var_class()
    assert sum(len(v) for v in classes.values()) == len(dgemm_campaign)
    assert "matrix" in classes


def test_campaign_deterministic():
    config = CampaignConfig(benchmark="nw", injections=30, seed=7)
    a = run_campaign(config)
    b = run_campaign(config)
    assert [r.to_dict() for r in a.records] == [r.to_dict() for r in b.records]


def test_campaign_seed_changes_results():
    a = run_campaign(CampaignConfig(benchmark="nw", injections=30, seed=7))
    b = run_campaign(CampaignConfig(benchmark="nw", injections=30, seed=8))
    assert [r.to_dict() for r in a.records] != [r.to_dict() for r in b.records]


def test_campaign_log_roundtrip(tmp_path):
    config = CampaignConfig(benchmark="lud", injections=25, seed=3)
    result = run_campaign(config, log_path=tmp_path / "lud.jsonl")
    loaded = load_injection_log(tmp_path / "lud.jsonl")
    assert [r.to_dict() for r in loaded] == [r.to_dict() for r in result.records]


def test_merge_logs(tmp_path):
    run_campaign(CampaignConfig(benchmark="lud", injections=10, seed=1), tmp_path / "a.jsonl")
    run_campaign(CampaignConfig(benchmark="nw", injections=10, seed=2), tmp_path / "b.jsonl")
    merged = merge_logs(tmp_path / "a.jsonl", tmp_path / "b.jsonl")
    assert len(merged) == 20
    assert {r.benchmark for r in merged} == {"lud", "nw"}


def test_benchmark_params_forwarded():
    config = CampaignConfig(
        benchmark="nw", injections=5, benchmark_params={"n": 16, "rows_per_step": 4}
    )
    result = run_campaign(config)
    assert all(r.total_steps == 4 for r in result.records)


def test_single_model_campaign():
    config = CampaignConfig(
        benchmark="nw", injections=12, fault_models=(FaultModel.ZERO,)
    )
    result = run_campaign(config)
    assert {r.fault_model for r in result.records} == {"zero"}
