"""Vectorized batch runner: byte-identity with the scalar path.

The batch path's single hard invariant is that it changes *nothing*
observable: every record it produces — and every campaign.jsonl built
from them — must be byte-identical to the scalar serial run at any
batch size and worker count.  These tests pin that equivalence at the
record level across all batchable benchmarks and batch sizes, at the
interrupt-step extremes, through mid-batch DUEs, and when every member
diverges; then at the campaign level byte-for-byte.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.benchmarks.registry import INJECTION_BENCHMARKS, create
from repro.carolfi.batchrunner import BatchRunner
from repro.carolfi.campaign import CampaignConfig, run_campaign
from repro.carolfi.configfile import load_config
from repro.carolfi.engine import campaign_fingerprint
from repro.carolfi.supervisor import Supervisor
from repro.faults.models import FaultModel
from repro.faults.outcome import Outcome
from repro.telemetry import Telemetry, TelemetryConfig

from tests.conftest import SMALL_CLAMR

#: Small-but-real parameters so the parametrized sweeps stay fast.
SMALL_PARAMS: dict[str, dict] = {
    "clamr": SMALL_CLAMR,
    "dgemm": {},  # defaults are already small (n=60, 22 steps)
    "hotspot": {"rows": 16, "cols": 16, "iterations": 12},
    "lavamd": {"boxes1d": 2, "par_per_box": 4},
    "lud": {"n": 16, "block": 4},
    "nw": {"n": 16, "rows_per_step": 4},
}

RUNS = 48


def small(name: str):
    return create(name, **SMALL_PARAMS[name])


def runs_for(supervisor: Supervisor, count: int = RUNS):
    models = FaultModel.all()
    return [(run, models[run % len(models)]) for run in range(count)]


# -- batched records == scalar records ----------------------------------------


@pytest.mark.parametrize("name", sorted(INJECTION_BENCHMARKS))
@pytest.mark.parametrize("batch_size", [1, 3, 8, 64])
def test_batched_records_match_scalar(name, batch_size):
    """Property: for every benchmark and batch size, run_many's records
    plus scalar fallbacks equal a pure run_one sweep, field for field."""
    batched_sup = Supervisor(small(name), seed=11, snapshots=True)
    scalar_sup = Supervisor(small(name), seed=11, snapshots=True)
    runs = runs_for(batched_sup)

    records = BatchRunner(batched_sup, batch_size).run_many(runs)
    if not batched_sup.benchmark.supports_batching:
        assert records == {}, "unsupported benchmarks must decline every run"
    for run, model in runs:
        expected = scalar_sup.run_one(run, model)
        if run in records:
            assert records[run].to_dict() == expected.to_dict()
        else:
            assert batched_sup.run_one(run, model).to_dict() == expected.to_dict()


@pytest.mark.parametrize("name", sorted(INJECTION_BENCHMARKS))
def test_batched_matches_at_interrupt_extremes(name):
    """Pinned first- and last-step interrupts take the same record path
    as run_one's interrupt_step parameter."""
    batched_sup = Supervisor(small(name), seed=4, snapshots=True)
    scalar_sup = Supervisor(small(name), seed=4, snapshots=True)
    last = batched_sup.total_steps - 1
    pins = {0: 0, 1: last}
    runs = [(0, FaultModel.RANDOM), (1, FaultModel.RANDOM)]

    records = BatchRunner(batched_sup, 8).run_many(runs, interrupt_steps=pins)
    for run, model in runs:
        expected = scalar_sup.run_one(run, model, interrupt_step=pins[run])
        assert expected.interrupt_step == pins[run]
        got = records.get(run) or batched_sup.run_one(
            run, model, interrupt_step=pins[run]
        )
        assert got.to_dict() == expected.to_dict()


def test_mid_batch_due_does_not_poison_the_group():
    """dgemm's pointer/control faults DUE mid-walk; the surviving
    members' records must still match the scalar path exactly."""
    batched_sup = Supervisor(create("dgemm"), seed=11, snapshots=True)
    scalar_sup = Supervisor(create("dgemm"), seed=11, snapshots=True)
    runs = runs_for(batched_sup, 96)

    tel = Telemetry(TelemetryConfig())
    with tel.activate():
        records = BatchRunner(batched_sup, 16).run_many(runs)
    outcomes = set()
    for run, model in runs:
        expected = scalar_sup.run_one(run, model)
        outcomes.add(expected.outcome)
        got = records.get(run) or batched_sup.run_one(run, model)
        assert got.to_dict() == expected.to_dict()
    assert Outcome.DUE in outcomes, "sweep too small to exercise a DUE"

    counters = tel.registry.counter_values()
    fallbacks = sum(counters.get("repro_batch_fallback_total", {}).values())
    vectorized = counters["repro_batch_runs_total"]["benchmark=dgemm,path=vectorized"]
    assert fallbacks > 0, "dgemm's stack faults should route some members scalar"
    assert vectorized > 0


def test_all_diverge_batch_returns_empty(monkeypatch):
    """When every member fails the coherence gate, run_many returns {}
    and the scalar fallback still reproduces the records."""
    bench = small("nw")
    monkeypatch.setattr(
        type(bench), "batch_coherent", lambda self, state, golden, index: False
    )
    batched_sup = Supervisor(bench, seed=11, snapshots=True)
    scalar_sup = Supervisor(small("nw"), seed=11, snapshots=True)
    runs = runs_for(batched_sup, 16)

    records = BatchRunner(batched_sup, 8).run_many(runs)
    assert records == {}
    for run, model in runs:
        assert (
            batched_sup.run_one(run, model).to_dict()
            == scalar_sup.run_one(run, model).to_dict()
        )


# -- campaign-level byte identity ---------------------------------------------


def test_campaign_jsonl_byte_identical_batched_vs_scalar(tmp_path):
    config = CampaignConfig(
        benchmark="nw",
        injections=60,
        seed=31,
        benchmark_params={"n": 16, "rows_per_step": 4},
    )
    run_campaign(config, log_path=tmp_path / "scalar.jsonl")
    run_campaign(replace(config, batch_size=8), log_path=tmp_path / "batched.jsonl")
    run_campaign(
        replace(config, batch_size=8),
        workers=2,
        shard_size=16,
        log_path=tmp_path / "sharded.jsonl",
    )
    scalar = (tmp_path / "scalar.jsonl").read_bytes()
    assert scalar == (tmp_path / "batched.jsonl").read_bytes()
    assert scalar == (tmp_path / "sharded.jsonl").read_bytes()


def test_fingerprint_ignores_batch_size():
    """batch_size is an execution knob, not an experiment parameter:
    checkpoints from a scalar campaign must resume under batching."""
    config = CampaignConfig(benchmark="nw", injections=60, seed=31)
    assert campaign_fingerprint(config) == campaign_fingerprint(
        replace(config, batch_size=8)
    )


# -- configuration surfaces ---------------------------------------------------


def test_configfile_parses_batch_size(tmp_path):
    ini = tmp_path / "campaign.ini"
    ini.write_text("[carol-fi]\nbenchmark = nw\ninjections = 10\nbatch_size = 8\n")
    config, _ = load_config(ini)
    assert config.batch_size == 8
    ini.write_text("[carol-fi]\nbenchmark = nw\ninjections = 10\n")
    config, _ = load_config(ini)
    assert config.batch_size == 1


def test_invalid_batch_size_rejected():
    with pytest.raises(ValueError):
        CampaignConfig(benchmark="nw", injections=10, batch_size=0)
    with pytest.raises(ValueError):
        BatchRunner(Supervisor(small("nw"), seed=1), 0)
