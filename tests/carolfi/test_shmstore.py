"""Shared-memory snapshot store: identity, copy-on-write, lifecycle.

The contract under test (DESIGN.md section 14):

* records are byte-identical with the shared store on, off, corrupted,
  or unpublishable — the segment is purely an accelerator;
* restores are copy-on-write: writes through a materialised state never
  reach the shared bytes, and per-worker memory stays private pages;
* only the publisher unlinks segments — an attacher killed with
  ``SIGKILL`` mid-restore cannot leak a ``/dev/shm`` entry — and the
  campaign engine reaps everything it published at teardown;
* a corrupted or truncated segment is an attach *miss* (never an
  error), degrading to the private clone path.
"""

import os
import signal

import numpy as np
import pytest

from repro.benchmarks import create
from repro.carolfi import shmstore
from repro.carolfi.campaign import CampaignConfig
from repro.carolfi.engine import run_sharded_campaign
from repro.carolfi.isolation import IsolationConfig, IsolationMode
from repro.carolfi.supervisor import Supervisor
from repro.faults.models import FaultModel

NW_PARAMS = {"n": 16, "rows_per_step": 4}
MODELS = FaultModel.all()


def nw_supervisor(**kwargs):
    return Supervisor(create("nw", **NW_PARAMS), seed=11, snapshots=True, **kwargs)


def records(supervisor, runs=10):
    return [
        supervisor.run_one(run, MODELS[run % len(MODELS)]).to_dict()
        for run in range(runs)
    ]


def segments(tmp_path):
    return sorted(tmp_path.glob("repro-shm-*"))


@pytest.fixture()
def shm_tmp(tmp_path, monkeypatch):
    monkeypatch.setenv(shmstore.SHM_DIR_ENV, str(tmp_path))
    monkeypatch.delenv(shmstore.SHM_DISABLE_ENV, raising=False)
    yield tmp_path
    shmstore.release_published()


def toy_segment(step_scale=1):
    """Publish a small dict-state segment; returns (key, segment)."""
    key = shmstore.store_key("toy", 7 * step_scale, 10.0, {"n": 4})
    pristine = {"a": np.arange(16, dtype=np.int64), "b": 2.5}
    snap = {"a": np.arange(16, dtype=np.int64) * 3, "b": 4.5}
    segment = shmstore.publish(
        key,
        benchmark="toy",
        total_steps=4,
        interval=2,
        golden_runtime=0.5,
        degraded=False,
        pristine=pristine,
        snapshots=[(2, snap, snap["a"].nbytes)],
        golden=np.arange(4.0),
    )
    assert segment is not None
    return key, segment


# -- byte-identity ------------------------------------------------------------


def test_shared_records_identical_to_private(shm_tmp):
    shared = nw_supervisor(shared=True)
    private = nw_supervisor()
    assert shared._shm is not None
    assert records(shared) == records(private)
    assert segments(shm_tmp)  # the segment exists while the publisher lives


def test_kill_switch_records_identical(shm_tmp, monkeypatch):
    baseline = records(nw_supervisor(shared=True))
    monkeypatch.setenv(shmstore.SHM_DISABLE_ENV, "0")
    disabled = nw_supervisor(shared=True)
    assert disabled._shm is None
    assert records(disabled) == baseline


def test_second_supervisor_attaches_same_segment(shm_tmp):
    first = nw_supervisor(shared=True)
    inode = os.stat(first._shm.path).st_ino
    second = nw_supervisor(shared=True)
    assert second._shm is not None
    assert second._shm.key == first._shm.key
    # Attach, not re-publish: the directory entry was never replaced.
    assert os.stat(second._shm.path).st_ino == inode
    # Budget accounting counts the host-wide segment, not a per-process
    # copy: both supervisors report the same shared payload.
    assert first.prefix.used_bytes == second.prefix.used_bytes
    assert first.prefix.used_bytes == first._shm.payload_bytes


# -- copy-on-write semantics --------------------------------------------------


def test_shared_views_are_read_only(shm_tmp):
    _, segment = toy_segment()
    assert not segment.pristine["a"].flags.writeable
    assert not segment.snapshot_state(2)["a"].flags.writeable
    with pytest.raises((ValueError, RuntimeError)):
        segment.pristine["a"][0] = 99


def test_materialize_is_copy_on_write(shm_tmp):
    _, segment = toy_segment()
    restored = segment.materialize(2)
    assert np.array_equal(restored["a"], np.arange(16) * 3)
    restored["a"][:] = -1  # writable, and the write stays private
    assert np.array_equal(segment.snapshot_state(2)["a"], np.arange(16) * 3)
    again = segment.materialize(2)
    assert np.array_equal(again["a"], np.arange(16) * 3)
    pristine = segment.materialize(None)
    pristine["a"][:] = 7
    assert np.array_equal(segment.pristine["a"], np.arange(16))


# -- corruption and fallback --------------------------------------------------


def test_attach_rejects_corruption(shm_tmp):
    key, _ = toy_segment()
    path = shmstore.segment_path(key)
    blob = bytearray(path.read_bytes())

    blob[-1] ^= 0xFF  # payload corruption
    path.write_bytes(blob)
    assert shmstore.attach(key) is None

    path.write_bytes(bytes(blob[: len(blob) // 2]))  # truncation
    assert shmstore.attach(key) is None

    path.write_bytes(b"not a segment")  # bad magic
    assert shmstore.attach(key) is None

    assert shmstore.attach("0" * 64) is None  # plain miss


def test_corrupted_segment_degrades_to_identical_records(shm_tmp):
    baseline = records(nw_supervisor())
    publisher = nw_supervisor(shared=True)
    path = publisher._shm.path
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(blob)
    # The next supervisor misses on attach (digest check) and takes the
    # private-or-republish path; records never change either way.
    fallback = nw_supervisor(shared=True)
    assert records(fallback) == baseline


def test_unwritable_store_dir_falls_back_private(shm_tmp, monkeypatch):
    blocker = shm_tmp / "blocker"
    blocker.write_bytes(b"")
    monkeypatch.setenv(shmstore.SHM_DIR_ENV, str(blocker))
    supervisor = nw_supervisor(shared=True)
    assert supervisor._shm is None  # attach and publish both impossible
    monkeypatch.setenv(shmstore.SHM_DIR_ENV, str(shm_tmp))
    assert records(supervisor) == records(nw_supervisor())


def test_unshareable_state_is_refused():
    payload_sink = __import__("io").BytesIO()
    with pytest.raises(TypeError):
        shmstore._pack(np.array([{"nested": "object"}], dtype=object), payload_sink)
    with pytest.raises(TypeError):
        shmstore._pack(np.arange(9).reshape(3, 3).T, payload_sink)  # non-C order


# -- lifecycle ----------------------------------------------------------------


def test_campaign_engine_reaps_segments(shm_tmp):
    config = CampaignConfig(
        benchmark="nw", injections=12, seed=13, benchmark_params=dict(NW_PARAMS)
    )
    result = run_sharded_campaign(config, workers=1, shard_size=6)
    assert len(result.records) == 12
    assert segments(shm_tmp) == []


def test_isolated_campaign_reaps_segments(shm_tmp):
    # Sandbox children exit via os._exit (no atexit), so the engine must
    # publish from its own process *before* the sandbox forks and reap at
    # teardown; a segment published inside a sandbox worker would leak.
    # The seed is unique to this test so the supervisor cache cannot hide
    # the publish.
    config = CampaignConfig(
        benchmark="nw", injections=8, seed=29, benchmark_params=dict(NW_PARAMS)
    )
    result = run_sharded_campaign(
        config,
        workers=1,
        shard_size=4,
        isolation=IsolationConfig(mode=IsolationMode.SUBPROCESS),
    )
    assert len(result.records) == 8
    assert segments(shm_tmp) == []


def test_release_published_reaps_only_own_segments(shm_tmp):
    key, _ = toy_segment()
    foreign = shm_tmp / "repro-shm-foreign.seg"
    foreign.write_bytes(b"someone else's segment")
    shmstore.release_published()
    assert not shmstore.segment_path(key).exists()
    assert foreign.exists()  # never touch segments we did not publish
    foreign.unlink()


def test_sigkilled_attacher_mid_restore_leaks_nothing(shm_tmp):
    key, _ = toy_segment()
    ready_r, ready_w = os.pipe()
    pid = os.fork()
    if pid == 0:  # attacher child: map, restore, dirty pages, spin
        try:
            os.close(ready_r)
            segment = shmstore.attach(key)
            restored = segment.materialize(2)
            restored["a"][:] = 7
            os.write(ready_w, b"r")
            while True:
                restored = segment.materialize(2)
                restored["a"][:] = 9
        finally:  # pragma: no cover — only reached if the kill raced us
            os._exit(0)
    os.close(ready_w)
    assert os.read(ready_r, 1) == b"r"  # child is mid-restore
    os.close(ready_r)
    os.kill(pid, signal.SIGKILL)
    os.waitpid(pid, 0)
    # The attacher owned nothing: the publisher's entry is intact, and
    # the publisher's release leaves the directory empty.
    assert segments(shm_tmp) != []
    shmstore.release_published()
    assert segments(shm_tmp) == []


def test_forked_child_never_reaps_parent_segments(shm_tmp):
    key, _ = toy_segment()
    pid = os.fork()
    if pid == 0:  # child inherits _PUBLISHED but must not act on it
        shmstore.release_published()
        os._exit(0)
    _, status = os.waitpid(pid, 0)
    assert os.WEXITSTATUS(status) == 0
    assert shmstore.segment_path(key).exists()  # pid guard held


# -- store keys ---------------------------------------------------------------


def test_store_key_sensitivity():
    base = dict(benchmark="nw", seed=1, watchdog_factor=10.0, benchmark_params={"n": 16})
    key = shmstore.store_key(**base)
    assert key == shmstore.store_key(**base)
    assert key != shmstore.store_key(**{**base, "seed": 2})
    assert key != shmstore.store_key(**base, density=8)
    assert key != shmstore.store_key(**base, byte_budget=1 << 20)
    assert key != shmstore.store_key(**{**base, "benchmark_params": {"n": 32}})
