"""Supervisor: golden management and outcome classification."""

import numpy as np
import pytest

from repro.benchmarks.registry import create
from repro.carolfi.supervisor import Supervisor
from repro.faults.models import FaultModel
from repro.faults.outcome import Outcome


@pytest.fixture(scope="module")
def supervisor() -> Supervisor:
    return Supervisor(create("dgemm"), seed=123)


def test_golden_computed_once_and_quantized(supervisor):
    assert supervisor.golden.shape == (60, 60)
    assert np.array_equal(supervisor.golden, np.round(supervisor.golden, 4))


def test_total_steps_recorded(supervisor):
    assert supervisor.total_steps == 22


def test_run_one_returns_complete_record(supervisor):
    record = supervisor.run_one(0, FaultModel.SINGLE)
    assert record.benchmark == "dgemm"
    assert record.fault_model == "single"
    assert 0 <= record.interrupt_step < record.total_steps
    assert record.outcome in Outcome.all()
    assert 0 <= record.time_window < record.num_windows
    assert record.site.variable != "unknown"


def test_run_one_deterministic(supervisor):
    a = supervisor.run_one(7, FaultModel.RANDOM)
    b = supervisor.run_one(7, FaultModel.RANDOM)
    assert a == b


def test_different_runs_differ(supervisor):
    records = [supervisor.run_one(i, FaultModel.SINGLE) for i in range(20)]
    sites = {(r.site.variable, r.site.flat_index) for r in records}
    assert len(sites) > 5


def test_sdc_records_carry_metrics(supervisor):
    for run in range(200):
        record = supervisor.run_one(run, FaultModel.RANDOM)
        if record.outcome is Outcome.SDC:
            assert record.sdc_metrics["wrong_elements"] >= 1
            assert record.sdc_metrics["max_rel_err"] > 0
            assert record.sdc_metrics["pattern"] in (
                "single",
                "line",
                "square",
                "cubic",
                "random",
            )
            break
    else:  # pragma: no cover
        pytest.fail("no SDC observed in 200 random-model runs")


def test_due_records_carry_kind(supervisor):
    for run in range(300):
        record = supervisor.run_one(run, FaultModel.RANDOM)
        if record.outcome is Outcome.DUE:
            assert record.due_kind is not None
            assert record.due_detail
            assert record.sdc_metrics == {}
            break
    else:  # pragma: no cover
        pytest.fail("no DUE observed in 300 random-model runs")


def test_forced_interrupt_step(supervisor):
    record = supervisor.run_one(0, FaultModel.SINGLE, interrupt_step=5)
    assert record.interrupt_step == 5


def test_interrupt_step_validated(supervisor):
    with pytest.raises(ValueError):
        supervisor.run_one(0, FaultModel.SINGLE, interrupt_step=999)


def test_integer_benchmark_compares_exactly():
    supervisor = Supervisor(create("nw", n=16, rows_per_step=4), seed=5)
    assert supervisor.golden.dtype == np.int32


def test_window_boundaries_cover_all_windows(supervisor):
    windows = {
        supervisor.run_one(0, FaultModel.SINGLE, interrupt_step=s).time_window
        for s in range(supervisor.total_steps)
    }
    assert windows == set(range(5))


def test_crash_net_covers_arithmetic_and_memory_errors():
    """Numeric aborts and allocation failures out of a corrupted run are
    process-death analogues and must classify as crash DUEs, not escape."""
    from repro.carolfi.supervisor import _CRASH_EXCEPTIONS

    for exc_type in (ZeroDivisionError, OverflowError, FloatingPointError, MemoryError):
        assert issubclass(exc_type, _CRASH_EXCEPTIONS)


def test_crash_net_classifies_arithmetic_error_as_due():
    supervisor = Supervisor(create("nw", n=16, rows_per_step=4), seed=3)
    original = supervisor.benchmark.step

    def explode(state, index):
        if index == 2:
            raise ZeroDivisionError("corrupted divisor")
        original(state, index)

    supervisor.benchmark.step = explode
    try:
        record = supervisor.run_one(0, FaultModel.SINGLE, interrupt_step=1)
    finally:
        supervisor.benchmark.step = original
    assert record.outcome is Outcome.DUE
    assert record.due_kind is not None and record.due_kind.value == "crash"
    assert "ZeroDivisionError" in record.due_detail


def test_golden_baseline_measured_after_warm_up():
    """The timed golden run must be the second execution: the first pays
    first-touch costs that would inflate the watchdog budget.  The
    warm-up is now a manual step loop (it doubles as the snapshot
    capture pass), so count ``step`` calls rather than ``run`` calls."""
    bench = create("nw", n=16, rows_per_step=4)
    steps = []
    original_step = bench.step

    def counting_step(state, index):
        steps.append(index)
        return original_step(state, index)

    bench.step = counting_step
    supervisor = Supervisor(bench, seed=1)
    assert len(steps) == 2 * supervisor.total_steps, (
        "expected one warm-up pass plus one timed golden pass"
    )
    assert supervisor.golden_runtime > 0


def test_warm_up_does_not_change_golden():
    a = Supervisor(create("nw", n=16, rows_per_step=4), seed=1)
    b = Supervisor(create("nw", n=16, rows_per_step=4), seed=1)
    assert np.array_equal(a.golden, b.golden)
