"""Execution-prefix snapshot cache: correctness of the injection fast path.

The fast path is only admissible because every fault model corrupts a
value the *unfaulted* program would have computed — the pre-injection
prefix of a run is bit-identical to the golden execution, so replaying
it from a snapshot must change nothing observable.  These tests pin
that equivalence at three levels: the ``snapshot``/``restore`` protocol
per benchmark, Supervisor records fast-vs-slow, and whole campaign
JSONL files byte-for-byte.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.carolfi.supervisor as supervisor_mod
from repro.benchmarks.registry import create, names
from repro.carolfi.campaign import CampaignConfig, run_campaign
from repro.carolfi.configfile import load_config
from repro.carolfi.goldencache import GoldenCache, golden_cache_key
from repro.carolfi.prefixcache import (
    DEFAULT_SNAPSHOT_BUDGET,
    PrefixStore,
    snapshot_interval,
)
from repro.carolfi.supervisor import Supervisor
from repro.faults.models import FaultModel
from repro.faults.outcome import Outcome
from repro.telemetry import Telemetry, TelemetryConfig
from repro.util.rng import derive_rng

from tests.conftest import SMALL_CLAMR

#: Small-but-real parameters so the six-way parametrized tests stay fast.
SMALL_PARAMS: dict[str, dict] = {
    "clamr": SMALL_CLAMR,
    "dgemm": {},  # defaults are already small (n=60, 22 steps)
    "hotspot": {"rows": 16, "cols": 16, "iterations": 12},
    "lavamd": {"boxes1d": 2, "par_per_box": 4},
    "lud": {"n": 16, "block": 4},
    "nw": {"n": 16, "rows_per_step": 4},
}


def small(name: str):
    return create(name, **SMALL_PARAMS[name])


# -- snapshot/restore protocol ------------------------------------------------


@pytest.mark.parametrize("name", names())
def test_restore_then_replay_is_bit_identical(name):
    """Snapshot mid-run, finish; restore, finish again: same output."""
    bench = small(name)
    state = bench.make_state(derive_rng(7, "prefix", name))
    total = bench.num_steps(state)
    assert total >= 2, "benchmark too small to test a mid-run snapshot"
    half = total // 2
    for index in range(half):
        bench.step(state, index)
    snap = bench.snapshot(state)
    for index in range(half, total):
        bench.step(state, index)
    out_a = bench.run(state)

    resumed = bench.restore(snap)
    for index in range(half, total):
        bench.step(resumed, index)
    out_b = bench.run(resumed)
    assert np.array_equal(out_a, out_b, equal_nan=True)


@pytest.mark.parametrize("name", names())
def test_snapshot_survives_mutation_of_restored_state(name):
    """``restore`` must hand out a fresh copy: running one restored
    state to completion cannot leak into a second restore."""
    bench = small(name)
    state = bench.make_state(derive_rng(7, "prefix", name))
    total = bench.num_steps(state)
    half = total // 2
    for index in range(half):
        bench.step(state, index)
    snap = bench.snapshot(state)

    first = bench.restore(snap)
    for index in range(half, total):
        bench.step(first, index)
    out_first = bench.run(first)

    second = bench.restore(snap)
    for index in range(half, total):
        bench.step(second, index)
    assert np.array_equal(out_first, bench.run(second), equal_nan=True)


# -- PrefixStore unit behaviour -----------------------------------------------


def test_snapshot_interval_scales_with_windows():
    assert snapshot_interval(400, 10) == 10
    assert snapshot_interval(8, 10) == 1  # floors at one step
    assert snapshot_interval(22, 5) == 1


def test_prefix_store_capture_and_latest():
    bench = create("nw", n=16, rows_per_step=4)
    state = bench.make_state(derive_rng(3, "store"))
    total = bench.num_steps(state)
    store = PrefixStore(bench, total)
    points = list(store.capture_points())
    assert points and all(0 < p < total for p in points)

    replay = bench.restore(bench.snapshot(state))
    for index in range(total):
        if store.wants(index):
            store.capture(index, replay)
        bench.step(replay, index)
    assert len(store) == len(points)
    assert store.latest(0) is None  # nothing strictly before the first point
    deepest = store.latest(total - 1)
    assert deepest is not None and deepest.step == points[-1]
    mid = store.latest(points[0])
    assert mid is not None and mid.step == points[0]


def test_prefix_store_rejects_out_of_range_captures():
    bench = create("nw", n=16, rows_per_step=4)
    state = bench.make_state(derive_rng(3, "store"))
    store = PrefixStore(bench, bench.num_steps(state))
    with pytest.raises(ValueError):
        store.capture(0, state)
    with pytest.raises(ValueError):
        store.capture(10**6, state)


def test_prefix_store_byte_budget_caps_captures():
    bench = create("nw", n=16, rows_per_step=4)
    state = bench.make_state(derive_rng(3, "store"))
    total = bench.num_steps(state)
    tiny = PrefixStore(bench, total, byte_budget=1)
    captured = 0
    for index in range(total):
        if tiny.wants(index):
            tiny.capture(index, state)
            captured += 1
    assert captured == 1, "budget admits the first snapshot then refuses"
    roomy = PrefixStore(bench, total, byte_budget=DEFAULT_SNAPSHOT_BUDGET)
    assert roomy.used_bytes == 0 and len(roomy) == 0


# -- Supervisor fast path == slow path ----------------------------------------


@pytest.mark.parametrize("name", ["nw", "dgemm"])
def test_fastpath_records_match_slowpath(name):
    fast = Supervisor(small(name), seed=11, snapshots=True)
    slow = Supervisor(small(name), seed=11, snapshots=False)
    assert fast.prefix is not None and len(fast.prefix) > 0
    assert slow.prefix is None
    models = FaultModel.all()
    for run in range(40):
        model = models[run % len(models)]
        assert fast.run_one(run, model) == slow.run_one(run, model)


def test_fastpath_matches_at_interrupt_extremes():
    fast = Supervisor(create("nw", n=16, rows_per_step=4), seed=4, snapshots=True)
    slow = Supervisor(create("nw", n=16, rows_per_step=4), seed=4, snapshots=False)
    last = fast.total_steps - 1
    for step in (0, 1, last):
        a = fast.run_one(0, FaultModel.RANDOM, interrupt_step=step)
        b = slow.run_one(0, FaultModel.RANDOM, interrupt_step=step)
        assert a == b
        assert a.interrupt_step == step


def test_campaign_jsonl_byte_identical_fast_vs_slow(tmp_path):
    from dataclasses import replace

    config = CampaignConfig(benchmark="nw", injections=60, seed=31,
                            benchmark_params={"n": 16, "rows_per_step": 4})
    run_campaign(config, log_path=tmp_path / "fast.jsonl")
    run_campaign(replace(config, snapshots=False), log_path=tmp_path / "slow.jsonl")
    assert (tmp_path / "fast.jsonl").read_bytes() == (tmp_path / "slow.jsonl").read_bytes()


def test_engine_workers_respect_snapshot_toggle(tmp_path):
    from dataclasses import replace

    config = CampaignConfig(benchmark="nw", injections=24, seed=31,
                            benchmark_params={"n": 16, "rows_per_step": 4})
    serial = run_campaign(config)
    fast = run_campaign(config, workers=2, shard_size=8)
    slow = run_campaign(replace(config, snapshots=False), workers=2, shard_size=8)
    as_dicts = lambda result: [r.to_dict() for r in result.records]  # noqa: E731
    assert as_dicts(fast) == as_dicts(serial)
    assert as_dicts(slow) == as_dicts(serial)


# -- telemetry counters -------------------------------------------------------


def test_snapshot_counters_emitted_on_serial_campaign():
    tel = Telemetry(TelemetryConfig())
    config = CampaignConfig(benchmark="nw", injections=40, seed=8,
                            benchmark_params={"n": 16, "rows_per_step": 4})
    run_campaign(config, telemetry=tel)
    counters = tel.registry.counter_values()
    restores = sum(counters["repro_snapshot_restores_total"].values())
    skipped = sum(counters["repro_steps_skipped_total"].values())
    assert restores > 0
    assert skipped >= restores, "every restore skips at least one step"
    assert sum(counters["repro_compare_fastpath_total"].values()) > 0


def test_cache_hit_supervisor_fills_store_opportunistically(tmp_path):
    """A disk-cached golden run skips the warm-up pass, so the store
    starts empty and must fill from run_one's pure golden prefixes."""
    Supervisor(create("nw", n=16, rows_per_step=4), seed=5, golden_cache=tmp_path)
    tel = Telemetry(TelemetryConfig())
    with tel.activate():
        warmed = Supervisor(
            create("nw", n=16, rows_per_step=4), seed=5, golden_cache=tmp_path
        )
        assert warmed.prefix is not None and len(warmed.prefix) == 0
        for run in range(20):
            warmed.run_one(run, FaultModel.SINGLE)
    assert len(warmed.prefix) > 0
    counters = tel.registry.counter_values()
    assert sum(counters["repro_snapshot_captures_total"].values()) == len(
        warmed.prefix
    )
    assert sum(counters["repro_golden_cache_total"].values()) >= 1


# -- golden-run disk cache ----------------------------------------------------


def test_golden_cache_round_trip_skips_golden_run(tmp_path):
    first = Supervisor(create("nw", n=16, rows_per_step=4), seed=5,
                       golden_cache=tmp_path)
    bench = create("nw", n=16, rows_per_step=4)
    calls = []
    original_run = bench.run
    bench.run = lambda state: (calls.append(1), original_run(state))[1]
    second = Supervisor(bench, seed=5, golden_cache=tmp_path)
    assert calls == [], "a cache hit must not re-execute the golden run"
    assert np.array_equal(first.golden, second.golden)
    assert first.golden_runtime == second.golden_runtime
    assert first.total_steps == second.total_steps
    for run in range(30):
        assert first.run_one(run, FaultModel.SINGLE) == second.run_one(
            run, FaultModel.SINGLE
        )


def test_golden_cache_ignores_corrupt_entries(tmp_path):
    Supervisor(create("nw", n=16, rows_per_step=4), seed=5, golden_cache=tmp_path)
    key = golden_cache_key("nw", 5, 10.0, create("nw", n=16, rows_per_step=4).params)
    payload = tmp_path / f"{key}.npy"
    assert payload.exists()
    payload.write_bytes(payload.read_bytes()[:-8])  # truncate the array
    assert GoldenCache(tmp_path).load(key) is None
    fresh = Supervisor(
        create("nw", n=16, rows_per_step=4), seed=5, golden_cache=tmp_path
    )
    assert fresh.golden.size > 0  # recomputed, not crashed


def test_golden_cache_key_separates_configurations():
    params = create("nw", n=16, rows_per_step=4).params
    base = golden_cache_key("nw", 5, 10.0, params)
    assert golden_cache_key("nw", 6, 10.0, params) != base
    assert golden_cache_key("dgemm", 5, 10.0, params) != base
    assert golden_cache_key("nw", 5, 20.0, params) != base


# -- input memoisation and compare fast path ----------------------------------


def test_fresh_state_builds_inputs_once():
    bench = create("nw", n=16, rows_per_step=4)
    calls = []
    original_make = bench.make_state

    def counting_make(rng):
        calls.append(1)
        return original_make(rng)

    bench.make_state = counting_make
    supervisor = Supervisor(bench, seed=2)
    for run in range(12):
        supervisor.run_one(run, FaultModel.ZERO)
    assert len(calls) == 1, "pristine inputs must be memoised, not re-generated"


def test_wrong_mask_called_only_on_sdc(monkeypatch):
    supervisor = Supervisor(create("dgemm"), seed=123)
    assert not np.isnan(supervisor.golden).any()
    calls = []
    original = supervisor_mod.wrong_mask

    def counting_wrong_mask(golden, observed):
        calls.append(1)
        return original(golden, observed)

    monkeypatch.setattr(supervisor_mod, "wrong_mask", counting_wrong_mask)
    records = [supervisor.run_one(run, FaultModel.RANDOM) for run in range(30)]
    sdc = sum(1 for r in records if r.outcome is Outcome.SDC)
    # With a NaN-free golden, array_equal is an exact MASKED test: the
    # element-wise mask is only ever computed for genuine mismatches.
    assert len(calls) == sdc


# -- config file --------------------------------------------------------------


def test_configfile_parses_snapshot_toggle(tmp_path):
    ini = tmp_path / "campaign.ini"
    ini.write_text(
        "[carol-fi]\nbenchmark = nw\ninjections = 10\nsnapshots = false\n"
    )
    config, _ = load_config(ini)
    assert config.snapshots is False
    ini.write_text("[carol-fi]\nbenchmark = nw\ninjections = 10\n")
    config, _ = load_config(ini)
    assert config.snapshots is True
