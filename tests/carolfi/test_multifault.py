"""Multi-fault run_one and the single-fault byte-identity guarantee."""

import filecmp
from pathlib import Path

import pytest

from repro.benchmarks.registry import create
from repro.carolfi.campaign import CampaignConfig, run_campaign
from repro.carolfi.supervisor import Supervisor
from repro.faults.models import FaultModel
from repro.faults.outcome import InjectionRecord

FIXTURE = Path(__file__).parent.parent / "fixtures" / "smoke_dgemm_single_fault.jsonl"

FIXTURE_CONFIG = CampaignConfig(
    benchmark="dgemm",
    injections=24,
    seed=2017,
    benchmark_params={"n": 24, "n_threads": 6, "k_block": 8, "col_block": 3},
)


def _supervisor(seed=2017):
    bench = create("dgemm", n=24, n_threads=6, k_block=8, col_block=3)
    return Supervisor(bench, seed=seed)


def test_single_fault_campaign_bytes_unchanged(tmp_path):
    """Regression cmp: the multi-fault refactor must not move a byte.

    The fixture was generated from the pre-refactor supervisor; any
    drift in RNG draw order, record fields or serialization shows up
    as a file mismatch.
    """
    log = tmp_path / "campaign.jsonl"
    run_campaign(FIXTURE_CONFIG, log_path=log)
    assert filecmp.cmp(log, FIXTURE, shallow=False), (
        "single-fault campaign log is no longer byte-identical to the "
        "pre-multi-fault fixture"
    )


def test_single_fault_campaign_bytes_unchanged_sharded(tmp_path):
    log = tmp_path / "campaign.jsonl"
    run_campaign(FIXTURE_CONFIG, log_path=log, workers=2)
    assert filecmp.cmp(log, FIXTURE, shallow=False)


def test_forced_step_equals_single_entry_fault_list():
    sup = _supervisor()
    legacy = sup.run_one(0, FaultModel.SINGLE, interrupt_step=4)
    listed = sup.run_one(0, faults=[(4, FaultModel.SINGLE)])
    assert legacy.to_dict() == listed.to_dict()
    assert listed.extra_faults == ()


def test_multi_fault_records_extra_faults():
    sup = _supervisor()
    record = sup.run_one(
        1,
        faults=[(2, FaultModel.SINGLE), (5, FaultModel.DOUBLE), (5, FaultModel.ZERO)],
    )
    assert record.interrupt_step == 2
    assert record.fault_model == "single"
    assert len(record.extra_faults) == 2
    assert [f["step"] for f in record.extra_faults] == [5, 5]
    assert record.extra_faults[0]["fault_model"] == "double"
    assert record.extra_faults[1]["fault_model"] == "zero"


def test_multi_fault_record_roundtrips():
    sup = _supervisor()
    record = sup.run_one(3, faults=[(1, FaultModel.SINGLE), (4, FaultModel.RANDOM)])
    data = record.to_dict()
    assert "extra_faults" in data
    assert InjectionRecord.from_dict(data).to_dict() == data


def test_single_fault_serialization_omits_extra_faults():
    sup = _supervisor()
    record = sup.run_one(0, FaultModel.SINGLE)
    assert "extra_faults" not in record.to_dict()


def test_multi_fault_is_deterministic():
    a = _supervisor().run_one(7, faults=[(1, FaultModel.DOUBLE), (3, FaultModel.ZERO)])
    b = _supervisor().run_one(7, faults=[(1, FaultModel.DOUBLE), (3, FaultModel.ZERO)])
    assert a.to_dict() == b.to_dict()


def test_fault_list_validation():
    sup = _supervisor()
    with pytest.raises(ValueError):
        sup.run_one(0, faults=[])
    with pytest.raises(ValueError):
        sup.run_one(0, faults=[(5, FaultModel.SINGLE), (2, FaultModel.SINGLE)])
    with pytest.raises(ValueError):
        sup.run_one(0, faults=[(10_000, FaultModel.SINGLE)])
    with pytest.raises(ValueError):
        sup.run_one(0, FaultModel.SINGLE, faults=[(2, FaultModel.SINGLE)])
    with pytest.raises(ValueError):
        sup.run_one(0)
