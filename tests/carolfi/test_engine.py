"""Sharded parallel campaign engine: determinism, resume, corruption."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.carolfi.campaign import CampaignConfig, run_campaign
from repro.carolfi.engine import (
    CheckpointError,
    ShardFailure,
    ShardSpec,
    campaign_fingerprint,
    plan_shards,
    resolve_workers,
    run_sharded_campaign,
    shard_path,
)

#: Small, fast campaign: nw with 4 steps, 24 injections over 4 shards.
CONFIG = CampaignConfig(
    benchmark="nw",
    injections=24,
    seed=13,
    benchmark_params={"n": 16, "rows_per_step": 4},
)
SHARD_SIZE = 6


def dicts(result):
    return [r.to_dict() for r in result.records]


@pytest.fixture(scope="module")
def serial_result():
    return run_campaign(CONFIG)


# -- shard planning -----------------------------------------------------------


def test_plan_shards_partitions_runs():
    shards = plan_shards(25, 7)
    assert [s.index for s in shards] == [0, 1, 2, 3]
    assert shards[0].start == 0 and shards[-1].stop == 25
    covered = [i for s in shards for i in s.run_indices()]
    assert covered == list(range(25))


def test_plan_shards_default_is_worker_independent():
    shards = plan_shards(1600)
    assert len(shards) == 16
    assert sum(s.size for s in shards) == 1600


def test_plan_shards_rejects_bad_input():
    with pytest.raises(ValueError):
        plan_shards(0)
    with pytest.raises(ValueError):
        plan_shards(10, 0)
    with pytest.raises(ValueError):
        ShardSpec(index=0, start=5, stop=5)


def test_resolve_workers_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert resolve_workers(None) == 3
    assert resolve_workers(2) == 2
    monkeypatch.delenv("REPRO_WORKERS")
    assert resolve_workers(None) >= 1
    with pytest.raises(ValueError):
        resolve_workers(0)


def test_fingerprint_tracks_config():
    base = campaign_fingerprint(CONFIG, SHARD_SIZE)
    assert base == campaign_fingerprint(CONFIG, SHARD_SIZE)
    other_seed = CampaignConfig(
        benchmark="nw", injections=24, seed=14,
        benchmark_params={"n": 16, "rows_per_step": 4},
    )
    assert campaign_fingerprint(other_seed, SHARD_SIZE) != base
    assert campaign_fingerprint(CONFIG, 3) != base


# -- determinism across worker counts (acceptance criterion) ------------------


def test_parallel_matches_serial_record_for_record(serial_result):
    parallel = run_campaign(CONFIG, workers=4, shard_size=SHARD_SIZE)
    assert dicts(parallel) == dicts(serial_result)


def test_sharding_layout_does_not_change_records(serial_result):
    odd_shards = run_campaign(CONFIG, workers=1, shard_size=5)
    assert dicts(odd_shards) == dicts(serial_result)


def test_engine_serial_path_matches_legacy(serial_result):
    engine = run_sharded_campaign(CONFIG, workers=1, shard_size=SHARD_SIZE)
    assert dicts(engine) == dicts(serial_result)


def test_engine_writes_campaign_log(tmp_path, serial_result):
    log_path = tmp_path / "campaign.jsonl"
    run_campaign(CONFIG, log_path, workers=2, shard_size=SHARD_SIZE)
    from repro.carolfi.logparse import load_injection_log

    assert [r.to_dict() for r in load_injection_log(log_path)] == dicts(serial_result)


# -- resumable checkpoints (acceptance criterion) -----------------------------


def test_resume_skips_completed_shards(tmp_path, serial_result):
    ckpt = tmp_path / "ckpt"
    run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    # Simulate a campaign killed mid-run: two shards never completed.
    shard_path(ckpt, 2).unlink()
    shard_path(ckpt, 3).unlink()
    events = []
    resumed = run_campaign(
        CONFIG,
        workers=1,
        checkpoint_dir=ckpt,
        shard_size=SHARD_SIZE,
        progress=events.append,
    )
    replayed = sorted(e.shard_index for e in events if e.event == "replayed")
    finished = sorted(e.shard_index for e in events if e.event == "finished")
    assert replayed == [0, 1]
    assert finished == [2, 3]
    assert dicts(resumed) == dicts(serial_result)


def test_resume_tolerates_partial_trailing_line(tmp_path, serial_result):
    """A worker killed mid-append leaves a truncated line; the shard re-runs."""
    ckpt = tmp_path / "ckpt"
    run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    path = shard_path(ckpt, 1)
    lines = path.read_text(encoding="utf-8").splitlines()
    truncated = "\n".join(lines[:4]) + '\n{"kind": "record", "data": {"tru'
    path.write_text(truncated, encoding="utf-8")
    events = []
    resumed = run_campaign(
        CONFIG,
        workers=1,
        checkpoint_dir=ckpt,
        shard_size=SHARD_SIZE,
        progress=events.append,
    )
    assert 1 in {e.shard_index for e in events if e.event == "finished"}
    assert dicts(resumed) == dicts(serial_result)
    # The re-run rewrote a complete checkpoint: a third invocation replays all.
    again = run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    assert dicts(again) == dicts(serial_result)


def test_missing_done_footer_reruns_shard(tmp_path, serial_result):
    ckpt = tmp_path / "ckpt"
    run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    path = shard_path(ckpt, 0)
    lines = path.read_text(encoding="utf-8").splitlines()
    assert json.loads(lines[-1])["kind"] == "done"
    path.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")
    events = []
    resumed = run_campaign(
        CONFIG,
        workers=1,
        checkpoint_dir=ckpt,
        shard_size=SHARD_SIZE,
        progress=events.append,
    )
    assert 0 in {e.shard_index for e in events if e.event == "finished"}
    assert dicts(resumed) == dicts(serial_result)


def test_parallel_resume_matches_serial(tmp_path, serial_result):
    ckpt = tmp_path / "ckpt"
    run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    shard_path(ckpt, 1).unlink()
    resumed = run_campaign(
        CONFIG, workers=2, checkpoint_dir=ckpt, shard_size=SHARD_SIZE
    )
    assert dicts(resumed) == dicts(serial_result)


def test_mismatched_config_hash_rejected(tmp_path):
    ckpt = tmp_path / "ckpt"
    run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    other = CampaignConfig(
        benchmark="nw", injections=24, seed=14,
        benchmark_params={"n": 16, "rows_per_step": 4},
    )
    with pytest.raises(CheckpointError):
        run_campaign(other, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)


def test_mismatched_shard_header_rejected(tmp_path):
    ckpt = tmp_path / "ckpt"
    run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    # A shard file copied over another slot matches the campaign hash but
    # covers the wrong run range: loud failure, never silent reuse.
    shard_path(ckpt, 0).write_text(
        shard_path(ckpt, 1).read_text(encoding="utf-8"), encoding="utf-8"
    )
    with pytest.raises(CheckpointError):
        run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)


def test_garbage_shard_file_reruns_shard(tmp_path, serial_result):
    ckpt = tmp_path / "ckpt"
    run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    shard_path(ckpt, 2).write_text("complete garbage\nnot json\n", encoding="utf-8")
    resumed = run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    assert dicts(resumed) == dicts(serial_result)


def test_killed_campaign_resumes_without_rerunning_finished_shards(tmp_path):
    """SIGKILL a checkpointing campaign mid-run, then resume in-process."""
    ckpt = tmp_path / "ckpt"
    script = (
        "from repro.carolfi.campaign import CampaignConfig, run_campaign\n"
        "config = CampaignConfig(benchmark='nw', injections=24, seed=13,\n"
        "                        benchmark_params={'n': 16, 'rows_per_step': 4})\n"
        "import time\n"
        "def slow(event):\n"
        "    time.sleep(0.05)  # stretch the campaign so the kill lands mid-run\n"
        f"run_campaign(config, workers=1, checkpoint_dir={str(ckpt)!r},\n"
        "             shard_size=6, progress=slow)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [env.get("PYTHONPATH", "")] + list(sys.path) if p
    )
    proc = subprocess.Popen([sys.executable, "-c", script], env=env)
    deadline = time.time() + 60
    try:
        # Wait until at least one shard checkpoint is complete, then kill.
        while time.time() < deadline and proc.poll() is None:
            done = [
                i for i in range(4)
                if shard_path(ckpt, i).exists()
                and '"kind": "done"' in shard_path(ckpt, i).read_text(encoding="utf-8")
            ]
            if done:
                break
            time.sleep(0.01)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
    finally:
        proc.wait(timeout=60)

    events = []
    resumed = run_campaign(
        CONFIG,
        workers=1,
        checkpoint_dir=ckpt,
        shard_size=SHARD_SIZE,
        progress=events.append,
    )
    replayed = {e.shard_index for e in events if e.event == "replayed"}
    finished = {e.shard_index for e in events if e.event == "finished"}
    assert replayed, "kill landed before any shard completed"
    assert replayed | finished == {0, 1, 2, 3}
    assert replayed.isdisjoint(finished)
    assert dicts(resumed) == dicts(run_campaign(CONFIG))


# -- failures and heartbeats --------------------------------------------------


def test_unknown_benchmark_fails_with_retry(tmp_path):
    bad = CampaignConfig(benchmark="no-such-benchmark", injections=4, seed=1)
    events = []
    with pytest.raises(ShardFailure):
        run_campaign(bad, workers=1, shard_size=2, progress=events.append)
    kinds = [e.event for e in events]
    assert "retried" in kinds and "failed" in kinds


def test_progress_heartbeat_fields():
    events = []
    run_campaign(CONFIG, workers=1, shard_size=SHARD_SIZE, progress=events.append)
    finished = [e for e in events if e.event == "finished"]
    assert len(finished) == 4
    assert finished[-1].done_runs == CONFIG.injections
    assert finished[-1].total_runs == CONFIG.injections
    assert finished[-1].rate > 0
    assert finished[-1].eta_s == pytest.approx(0.0, abs=1e-6)
    assert all(e.shard_count == 4 for e in events)
    done = [e.done_runs for e in finished]
    assert done == sorted(done)
