"""Sharded parallel campaign engine: determinism, resume, corruption."""

import io
import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import replace

import pytest

from repro.carolfi.campaign import CampaignConfig, run_campaign
from repro.carolfi.engine import (
    FAILURE_LOG_NAME,
    CheckpointError,
    RetryPolicy,
    ShardFailure,
    ShardSpec,
    backoff_delay,
    campaign_fingerprint,
    plan_shards,
    read_failure_log,
    resolve_workers,
    run_sharded_campaign,
    shard_path,
)
from repro.carolfi.isolation import IsolationConfig, IsolationMode
from repro.faults.models import FaultModel
from repro.faults.outcome import DueKind, Outcome
from repro.telemetry import Telemetry, TelemetryConfig
from repro.util.jsonlog import load_records_tolerant

#: Small, fast campaign: nw with 4 steps, 24 injections over 4 shards.
CONFIG = CampaignConfig(
    benchmark="nw",
    injections=24,
    seed=13,
    benchmark_params={"n": 16, "rows_per_step": 4},
)
SHARD_SIZE = 6


def dicts(result):
    return [r.to_dict() for r in result.records]


@pytest.fixture(scope="module")
def serial_result():
    return run_campaign(CONFIG)


# -- shard planning -----------------------------------------------------------


def test_plan_shards_partitions_runs():
    shards = plan_shards(25, 7)
    assert [s.index for s in shards] == [0, 1, 2, 3]
    assert shards[0].start == 0 and shards[-1].stop == 25
    covered = [i for s in shards for i in s.run_indices()]
    assert covered == list(range(25))


def test_plan_shards_default_is_worker_independent():
    shards = plan_shards(1600)
    assert len(shards) == 16
    assert sum(s.size for s in shards) == 1600


def test_plan_shards_rejects_bad_input():
    with pytest.raises(ValueError):
        plan_shards(0)
    with pytest.raises(ValueError):
        plan_shards(10, 0)
    with pytest.raises(ValueError):
        ShardSpec(index=0, start=5, stop=5)


def test_resolve_workers_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert resolve_workers(None) == 3
    assert resolve_workers(2) == 2
    monkeypatch.delenv("REPRO_WORKERS")
    assert resolve_workers(None) >= 1
    with pytest.raises(ValueError):
        resolve_workers(0)


def test_fingerprint_tracks_config():
    base = campaign_fingerprint(CONFIG, SHARD_SIZE)
    assert base == campaign_fingerprint(CONFIG, SHARD_SIZE)
    other_seed = CampaignConfig(
        benchmark="nw", injections=24, seed=14,
        benchmark_params={"n": 16, "rows_per_step": 4},
    )
    assert campaign_fingerprint(other_seed, SHARD_SIZE) != base
    assert campaign_fingerprint(CONFIG, 3) != base


# -- determinism across worker counts (acceptance criterion) ------------------


def test_parallel_matches_serial_record_for_record(serial_result):
    parallel = run_campaign(CONFIG, workers=4, shard_size=SHARD_SIZE)
    assert dicts(parallel) == dicts(serial_result)


def test_sharding_layout_does_not_change_records(serial_result):
    odd_shards = run_campaign(CONFIG, workers=1, shard_size=5)
    assert dicts(odd_shards) == dicts(serial_result)


def test_engine_serial_path_matches_legacy(serial_result):
    engine = run_sharded_campaign(CONFIG, workers=1, shard_size=SHARD_SIZE)
    assert dicts(engine) == dicts(serial_result)


def test_engine_writes_campaign_log(tmp_path, serial_result):
    log_path = tmp_path / "campaign.jsonl"
    run_campaign(CONFIG, log_path, workers=2, shard_size=SHARD_SIZE)
    from repro.carolfi.logparse import load_injection_log

    assert [r.to_dict() for r in load_injection_log(log_path)] == dicts(serial_result)


# -- resumable checkpoints (acceptance criterion) -----------------------------


def test_resume_skips_completed_shards(tmp_path, serial_result):
    ckpt = tmp_path / "ckpt"
    run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    # Simulate a campaign killed mid-run: two shards never completed.
    shard_path(ckpt, 2).unlink()
    shard_path(ckpt, 3).unlink()
    events = []
    resumed = run_campaign(
        CONFIG,
        workers=1,
        checkpoint_dir=ckpt,
        shard_size=SHARD_SIZE,
        progress=events.append,
    )
    replayed = sorted(e.shard_index for e in events if e.event == "replayed")
    finished = sorted(e.shard_index for e in events if e.event == "finished")
    assert replayed == [0, 1]
    assert finished == [2, 3]
    assert dicts(resumed) == dicts(serial_result)


def test_resume_tolerates_partial_trailing_line(tmp_path, serial_result):
    """A worker killed mid-append leaves a truncated line; the shard re-runs."""
    ckpt = tmp_path / "ckpt"
    run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    path = shard_path(ckpt, 1)
    lines = path.read_text(encoding="utf-8").splitlines()
    truncated = "\n".join(lines[:4]) + '\n{"kind": "record", "data": {"tru'
    path.write_text(truncated, encoding="utf-8")
    events = []
    resumed = run_campaign(
        CONFIG,
        workers=1,
        checkpoint_dir=ckpt,
        shard_size=SHARD_SIZE,
        progress=events.append,
    )
    assert 1 in {e.shard_index for e in events if e.event == "finished"}
    assert dicts(resumed) == dicts(serial_result)
    # The re-run rewrote a complete checkpoint: a third invocation replays all.
    again = run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    assert dicts(again) == dicts(serial_result)


def test_missing_done_footer_reruns_shard(tmp_path, serial_result):
    ckpt = tmp_path / "ckpt"
    run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    path = shard_path(ckpt, 0)
    lines = path.read_text(encoding="utf-8").splitlines()
    assert json.loads(lines[-1])["kind"] == "done"
    path.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")
    events = []
    resumed = run_campaign(
        CONFIG,
        workers=1,
        checkpoint_dir=ckpt,
        shard_size=SHARD_SIZE,
        progress=events.append,
    )
    assert 0 in {e.shard_index for e in events if e.event == "finished"}
    assert dicts(resumed) == dicts(serial_result)


def test_parallel_resume_matches_serial(tmp_path, serial_result):
    ckpt = tmp_path / "ckpt"
    run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    shard_path(ckpt, 1).unlink()
    resumed = run_campaign(
        CONFIG, workers=2, checkpoint_dir=ckpt, shard_size=SHARD_SIZE
    )
    assert dicts(resumed) == dicts(serial_result)


def test_mismatched_config_hash_rejected(tmp_path):
    ckpt = tmp_path / "ckpt"
    run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    other = CampaignConfig(
        benchmark="nw", injections=24, seed=14,
        benchmark_params={"n": 16, "rows_per_step": 4},
    )
    with pytest.raises(CheckpointError):
        run_campaign(other, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)


def test_mismatched_shard_header_rejected(tmp_path):
    ckpt = tmp_path / "ckpt"
    run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    # A shard file copied over another slot matches the campaign hash but
    # covers the wrong run range: loud failure, never silent reuse.
    shard_path(ckpt, 0).write_text(
        shard_path(ckpt, 1).read_text(encoding="utf-8"), encoding="utf-8"
    )
    with pytest.raises(CheckpointError):
        run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)


def test_garbage_shard_file_reruns_shard(tmp_path, serial_result):
    ckpt = tmp_path / "ckpt"
    run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    shard_path(ckpt, 2).write_text("complete garbage\nnot json\n", encoding="utf-8")
    resumed = run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    assert dicts(resumed) == dicts(serial_result)


def test_killed_campaign_resumes_without_rerunning_finished_shards(tmp_path):
    """SIGKILL a checkpointing campaign mid-run, then resume in-process."""
    ckpt = tmp_path / "ckpt"
    script = (
        "from repro.carolfi.campaign import CampaignConfig, run_campaign\n"
        "config = CampaignConfig(benchmark='nw', injections=24, seed=13,\n"
        "                        benchmark_params={'n': 16, 'rows_per_step': 4})\n"
        "import time\n"
        "def slow(event):\n"
        "    time.sleep(0.05)  # stretch the campaign so the kill lands mid-run\n"
        f"run_campaign(config, workers=1, checkpoint_dir={str(ckpt)!r},\n"
        "             shard_size=6, progress=slow)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [env.get("PYTHONPATH", "")] + list(sys.path) if p
    )
    proc = subprocess.Popen([sys.executable, "-c", script], env=env)
    deadline = time.time() + 60
    try:
        # Wait until at least one shard checkpoint is complete, then kill.
        while time.time() < deadline and proc.poll() is None:
            done = [
                i for i in range(4)
                if shard_path(ckpt, i).exists()
                and '"kind": "done"' in shard_path(ckpt, i).read_text(encoding="utf-8")
            ]
            if done:
                break
            time.sleep(0.01)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
    finally:
        proc.wait(timeout=60)

    events = []
    resumed = run_campaign(
        CONFIG,
        workers=1,
        checkpoint_dir=ckpt,
        shard_size=SHARD_SIZE,
        progress=events.append,
    )
    replayed = {e.shard_index for e in events if e.event == "replayed"}
    finished = {e.shard_index for e in events if e.event == "finished"}
    assert replayed, "kill landed before any shard completed"
    assert replayed | finished == {0, 1, 2, 3}
    assert replayed.isdisjoint(finished)
    assert dicts(resumed) == dicts(run_campaign(CONFIG))


# -- failures and heartbeats --------------------------------------------------


#: Near-zero backoff so retry-heavy tests stay fast.
FAST_RETRY = RetryPolicy(backoff_base_s=0.001, backoff_cap_s=0.002)


def test_unknown_benchmark_fails_with_retry(tmp_path):
    bad = CampaignConfig(benchmark="no-such-benchmark", injections=4, seed=1)
    events = []
    with pytest.raises(ShardFailure):
        run_campaign(bad, workers=1, shard_size=2, progress=events.append, retry=FAST_RETRY)
    kinds = [e.event for e in events]
    assert "retried" in kinds and "failed" in kinds


def test_shard_failure_carries_attempt_count():
    bad = CampaignConfig(benchmark="no-such-benchmark", injections=2, seed=1)
    with pytest.raises(ShardFailure) as excinfo:
        run_campaign(bad, workers=1, shard_size=2, retry=FAST_RETRY)
    assert excinfo.value.attempts == FAST_RETRY.max_attempts
    assert excinfo.value.shard_index == 0


# -- backoff and retry policy -------------------------------------------------


def test_backoff_deterministic_under_fixed_seed():
    policy = RetryPolicy(backoff_base_s=0.25, backoff_cap_s=8.0)
    assert backoff_delay(13, 2, 1, policy) == backoff_delay(13, 2, 1, policy)
    # Jitter streams are keyed by shard and attempt: no stampede.
    assert backoff_delay(13, 2, 1, policy) != backoff_delay(13, 3, 1, policy)
    assert backoff_delay(13, 2, 1, policy) != backoff_delay(13, 2, 2, policy)
    assert backoff_delay(13, 2, 1, policy) != backoff_delay(14, 2, 1, policy)


def test_backoff_grows_exponentially_to_cap():
    policy = RetryPolicy(backoff_base_s=0.25, backoff_cap_s=8.0)
    for attempt in range(1, 12):
        expected = min(0.25 * 2 ** (attempt - 1), 8.0)
        delay = backoff_delay(13, 0, attempt, policy)
        assert 0.5 * expected <= delay <= 1.5 * expected
    with pytest.raises(ValueError):
        backoff_delay(13, 0, 0, policy)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base_s=2.0, backoff_cap_s=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(liveness_timeout_s=0)
    with pytest.raises(ValueError):
        RetryPolicy(max_run_deaths=0)


# -- failure-event log --------------------------------------------------------


def test_checkpoint_dir_gets_failure_log_eagerly(tmp_path):
    ckpt = tmp_path / "ckpt"
    run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    log = ckpt / FAILURE_LOG_NAME
    assert log.exists(), "failure log must exist even for a clean campaign"
    events, skipped = read_failure_log(log)
    assert events == [] and skipped == 0


def test_read_failure_log_counts_corrupt_lines(tmp_path):
    log = tmp_path / "failures.jsonl"
    log.write_text(
        '{"event": "retry", "shard": 0}\n'
        "}}corrupt{{\n"
        '{"event": "quarantine", "shard": 0}\n'
        "also not json\n",
        encoding="utf-8",
    )
    events, skipped = read_failure_log(log)
    assert [e["event"] for e in events] == ["retry", "quarantine"]
    assert skipped == 2
    assert read_failure_log(tmp_path / "missing.jsonl") == ([], 0)


# -- fault domains: quarantine and reaping ------------------------------------


def _chaos(failure, injections=8, **extra):
    params = {"n": 64, "steps": 6, "failure": failure}
    params.update(extra)
    return CampaignConfig(benchmark="chaos", injections=injections, seed=5, benchmark_params=params)


def test_serial_escaped_exception_quarantined(tmp_path):
    """OSError escapes the Supervisor's crash net; the engine's fault
    domain retries, attributes, and quarantines the run as a DUE."""
    log = tmp_path / "failures.jsonl"
    events = []
    result = run_campaign(
        _chaos("oserror"),
        workers=1,
        shard_size=4,
        retry=FAST_RETRY,
        failure_log=log,
        progress=events.append,
    )
    twin = run_campaign(_chaos("none"))
    dues = []
    for clean, record in zip(twin.records, result.records):
        if record.outcome is Outcome.DUE and record.due_detail.startswith("sandbox:"):
            dues.append(record)
            assert clean.site.variable == "trigger"
        else:
            assert record.to_dict() == clean.to_dict()
    assert dues and all(r.due_kind is DueKind.CRASH for r in dues)
    assert all("quarantined" in r.due_detail for r in dues)
    assert "quarantined" in {e.event for e in events}
    kinds = [e["event"] for e in read_failure_log(log)[0]]
    assert "run_error" in kinds and "retry" in kinds and "quarantine" in kinds


def test_pool_reaps_hung_worker_and_quarantines_run(tmp_path):
    """A guard-free spin in inproc mode hangs the whole shard worker; the
    engine's liveness check reaps it and quarantines the run as a HANG."""
    log = tmp_path / "failures.jsonl"
    events = []
    policy = RetryPolicy(backoff_base_s=0.001, backoff_cap_s=0.002, liveness_timeout_s=1.0)
    result = run_campaign(
        _chaos("spin", spin_s=60.0),
        workers=2,
        shard_size=8,
        retry=policy,
        failure_log=log,
        progress=events.append,
    )
    twin = run_campaign(_chaos("none"))
    dues = []
    for clean, record in zip(twin.records, result.records):
        if record.outcome is Outcome.DUE and record.due_detail.startswith("sandbox:"):
            dues.append(record)
            assert clean.site.variable == "trigger"
        else:
            assert record.to_dict() == clean.to_dict()
    assert dues and all(r.due_kind is DueKind.HANG for r in dues)
    kinds = {e.event for e in events}
    assert "reaped" in kinds and "quarantined" in kinds
    log_kinds = [e["event"] for e in read_failure_log(log)[0]]
    assert "reap" in log_kinds and "quarantine" in log_kinds


def test_progress_heartbeat_fields():
    events = []
    run_campaign(CONFIG, workers=1, shard_size=SHARD_SIZE, progress=events.append)
    finished = [e for e in events if e.event == "finished"]
    assert len(finished) == 4
    assert finished[-1].done_runs == CONFIG.injections
    assert finished[-1].total_runs == CONFIG.injections
    assert finished[-1].rate > 0
    assert finished[-1].eta_s == pytest.approx(0.0, abs=1e-6)
    assert all(e.shard_count == 4 for e in events)
    done = [e.done_runs for e in finished]
    assert done == sorted(done)


# -- telemetry (observability subsystem) --------------------------------------


def collected(workers, **kwargs):
    tel = Telemetry(TelemetryConfig())
    result = run_campaign(
        CONFIG, workers=workers, shard_size=SHARD_SIZE, telemetry=tel, **kwargs
    )
    return result, tel


def test_heartbeat_done_counts_monotonic_with_telemetry():
    events = []
    _, tel = collected(workers=2, progress=events.append)
    done = [e.done_runs for e in events]
    assert done == sorted(done), "heartbeat done_runs must never move backwards"
    assert done[-1] == CONFIG.injections
    assert tel.registry.gauge("repro_shard_runs_done").value(shard=0) == SHARD_SIZE


def test_final_heartbeat_totals_equal_merged_metric_totals():
    events = []
    result, tel = collected(workers=3, progress=events.append)
    finished = [e for e in events if e.event == "finished"]
    counters = tel.registry.counter_values()
    runs_total = sum(counters["repro_runs_total"].values())
    records_total = sum(counters["repro_records_total"].values())
    assert finished[-1].done_runs == runs_total == records_total == CONFIG.injections
    assert records_total == len(result.records)
    # Outcome mix in the registry matches the records themselves.
    for outcome in Outcome.all():
        assert counters["repro_records_total"].get(
            f"outcome={outcome.value}", 0.0
        ) == sum(1 for r in result.records if r.outcome is outcome)


def test_parallel_telemetry_counters_match_serial_twin(serial_result):
    serial, tel_serial = collected(workers=1)
    parallel, tel_parallel = collected(
        workers=3,
        isolation=IsolationConfig(mode=IsolationMode.SUBPROCESS),
    )
    assert dicts(serial) == dicts(serial_result)
    assert dicts(parallel) == dicts(serial_result)
    serial_counters = tel_serial.registry.counter_values()
    parallel_counters = tel_parallel.registry.counter_values()
    # Sandbox spawn counts depend on worker topology (one sandbox per
    # shard worker, not per run): drop them before comparing.  The
    # prefix/golden-cache efficiency counters are likewise topology
    # dependent — each sandbox grandchild builds its own snapshot store
    # and its counters die with it — so they are dropped too.
    cache_families = (
        "repro_snapshot_restores_total",
        "repro_snapshot_captures_total",
        "repro_steps_skipped_total",
        "repro_compare_fastpath_total",
        "repro_golden_cache_total",
        "repro_shm_attach_total",
        "repro_shm_publish_total",
        "repro_snapshot_budget_degraded_total",
    )
    for counters in (serial_counters, parallel_counters):
        counters.pop("repro_sandbox_spawns_total", None)
        counters.get("repro_failure_events_total", {}).pop("event=sandbox_spawn", None)
        for family in cache_families:
            counters.pop(family, None)
    assert parallel_counters == serial_counters


def test_disabled_telemetry_leaves_records_bit_identical(serial_result):
    enabled, tel = collected(workers=2)
    disabled = run_campaign(
        CONFIG, workers=2, shard_size=SHARD_SIZE, telemetry=Telemetry(enabled=False)
    )
    assert dicts(enabled) == dicts(serial_result)
    assert dicts(disabled) == dicts(serial_result)
    assert sum(tel.registry.counter_values()["repro_runs_total"].values()) > 0


def test_trace_jsonl_parses_and_shares_one_trace(tmp_path):
    tel = Telemetry(TelemetryConfig(trace_path=tmp_path / "trace.jsonl"))
    run_campaign(CONFIG, workers=2, shard_size=SHARD_SIZE, telemetry=tel)
    tel.finalize()
    records, skipped = load_records_tolerant(tmp_path / "trace.jsonl")
    assert skipped == 0 and records
    assert all(r["kind"] == "span" for r in records)
    assert len({r["trace"] for r in records}) == 1, "one campaign, one trace"
    names = {r["name"] for r in records}
    assert {"campaign", "shard", "run", "execute", "corrupt"} <= names
    by_id = {r["span"]: r for r in records}
    roots = [r for r in records if r["parent"] is None]
    assert [r["name"] for r in roots] == ["campaign"]
    # Worker-side spans chain back to the engine's campaign span.
    for record in records:
        if record["parent"] is not None:
            assert record["parent"] in by_id
    (campaign,) = roots
    assert campaign["attrs"]["records"] == CONFIG.injections


def test_run_replays_also_counted(tmp_path):
    ckpt = tmp_path / "ckpt"
    run_campaign(CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE)
    tel = Telemetry(TelemetryConfig())
    resumed = run_campaign(
        CONFIG, workers=1, checkpoint_dir=ckpt, shard_size=SHARD_SIZE, telemetry=tel
    )
    counters = tel.registry.counter_values()
    assert counters["repro_runs_replayed_total"][""] == CONFIG.injections
    assert "repro_runs_total" not in counters or not counters["repro_runs_total"]
    assert sum(counters["repro_records_total"].values()) == len(resumed.records)


def test_progress_reporter_emits_status_lines():
    stream = io.StringIO()
    tel = Telemetry(
        TelemetryConfig(progress_interval_s=0.001, progress_stream=stream)
    )
    run_campaign(CONFIG, workers=2, shard_size=SHARD_SIZE, telemetry=tel)
    lines = stream.getvalue().splitlines()
    assert lines, "an interval this short must emit at least one line"
    assert lines[-1].startswith(f"[nw] {CONFIG.injections}/{CONFIG.injections} runs")
    assert "masked" in lines[-1] and "eta" in lines[-1]


def test_failure_events_counted_by_kind(tmp_path):
    tel = Telemetry(TelemetryConfig())
    run_campaign(
        _chaos("oserror"),
        workers=1,
        shard_size=4,
        retry=FAST_RETRY,
        failure_log=tmp_path / "failures.jsonl",
        telemetry=tel,
    )
    events = tel.registry.counter_values()["repro_failure_events_total"]
    assert events.get("event=retry", 0.0) > 0
    assert events.get("event=quarantine", 0.0) > 0


# -- statistical early stopping (config.target_ci) ----------------------------

#: Single-model twin of CONFIG: one statistical cell, so a loose CI
#: target is reachable inside 24 injections.
STOP_CONFIG = CampaignConfig(
    benchmark="nw",
    injections=24,
    seed=13,
    fault_models=(FaultModel.SINGLE,),
    benchmark_params={"n": 16, "rows_per_step": 4},
)
STOP_TARGET = 0.45


def test_target_ci_excluded_from_fingerprint():
    capped = replace(STOP_CONFIG, target_ci=STOP_TARGET)
    assert campaign_fingerprint(capped, SHARD_SIZE) == campaign_fingerprint(
        STOP_CONFIG, SHARD_SIZE
    )


def test_target_ci_validation():
    with pytest.raises(ValueError):
        CampaignConfig(benchmark="nw", injections=8, target_ci=0.0)
    with pytest.raises(ValueError):
        CampaignConfig(benchmark="nw", injections=8, target_ci=1.5)


def test_target_ci_stops_early_with_prefix_records():
    full = run_sharded_campaign(STOP_CONFIG, workers=1, shard_size=SHARD_SIZE)
    capped = run_sharded_campaign(
        replace(STOP_CONFIG, target_ci=STOP_TARGET), workers=1, shard_size=SHARD_SIZE
    )
    assert capped.stopped_early and not full.stopped_early
    stopped = len(capped.records)
    assert 0 < stopped < len(full.records)
    assert stopped % SHARD_SIZE == 0  # stops only at shard boundaries
    assert dicts(capped) == dicts(full)[:stopped]


def test_target_ci_stop_point_is_worker_independent():
    capped = replace(STOP_CONFIG, target_ci=STOP_TARGET)
    serial = run_sharded_campaign(capped, workers=1, shard_size=SHARD_SIZE)
    parallel = run_sharded_campaign(capped, workers=2, shard_size=SHARD_SIZE)
    assert serial.stopped_early and parallel.stopped_early
    assert dicts(serial) == dicts(parallel)


def test_target_ci_campaign_log_is_byte_prefix(tmp_path):
    run_sharded_campaign(
        STOP_CONFIG, workers=1, shard_size=SHARD_SIZE, log_path=tmp_path / "full.jsonl"
    )
    run_sharded_campaign(
        replace(STOP_CONFIG, target_ci=STOP_TARGET),
        workers=1,
        shard_size=SHARD_SIZE,
        log_path=tmp_path / "capped.jsonl",
    )
    full_bytes = (tmp_path / "full.jsonl").read_bytes()
    capped_bytes = (tmp_path / "capped.jsonl").read_bytes()
    assert 0 < len(capped_bytes) < len(full_bytes)
    assert full_bytes.startswith(capped_bytes)


def test_target_ci_logs_early_stop_event_and_resumes_clean(tmp_path):
    capped = replace(STOP_CONFIG, target_ci=STOP_TARGET)
    tel = Telemetry(TelemetryConfig())
    stopped = run_sharded_campaign(
        capped, workers=1, shard_size=SHARD_SIZE, checkpoint_dir=tmp_path, telemetry=tel
    )
    assert stopped.stopped_early
    events, corrupt = read_failure_log(tmp_path / FAILURE_LOG_NAME)
    assert corrupt == 0
    (stop_event,) = [e for e in events if e.get("event") == "early_stop"]
    assert stop_event["runs"] == len(stopped.records)
    assert stop_event["target_ci"] == STOP_TARGET
    assert stop_event["max_half_width"] <= STOP_TARGET
    assert stop_event["shards_skipped"] > 0
    # The same checkpoint dir finishes the uncapped campaign: the
    # stopped prefix is replayed, only the skipped shards run live.
    finished = run_sharded_campaign(
        STOP_CONFIG, workers=1, shard_size=SHARD_SIZE, checkpoint_dir=tmp_path
    )
    assert not finished.stopped_early
    assert len(finished.records) == STOP_CONFIG.injections
    assert dicts(finished)[: len(stopped.records)] == dicts(stopped)


def test_target_ci_noop_when_target_never_met():
    capped = replace(STOP_CONFIG, target_ci=0.001)
    result = run_sharded_campaign(capped, workers=1, shard_size=SHARD_SIZE)
    assert not result.stopped_early
    assert len(result.records) == STOP_CONFIG.injections


# -- cross-shard drift detection ----------------------------------------------


DRIFT_CONFIG = CampaignConfig(
    benchmark="nw",
    injections=64,
    seed=13,
    fault_models=(FaultModel.SINGLE,),
    benchmark_params={"n": 16, "rows_per_step": 4},
)


def test_healthy_campaign_raises_no_drift_flags(tmp_path):
    tel = Telemetry(TelemetryConfig())
    run_sharded_campaign(
        DRIFT_CONFIG, workers=1, shard_size=16, checkpoint_dir=tmp_path / "s", telemetry=tel
    )
    events, _ = read_failure_log(tmp_path / "s" / FAILURE_LOG_NAME)
    assert [e for e in events if e.get("event") == "drift"] == []
    # Healthy serial and parallel twins must also export identical
    # registries, so the drift counter may not exist merely as a zero.
    assert "repro_drift_flags_total" not in tel.registry.snapshot()
    tel_par = Telemetry(TelemetryConfig())
    run_sharded_campaign(
        DRIFT_CONFIG, workers=2, shard_size=16, checkpoint_dir=tmp_path / "p", telemetry=tel_par
    )
    events_par, _ = read_failure_log(tmp_path / "p" / FAILURE_LOG_NAME)
    assert [e for e in events_par if e.get("event") == "drift"] == []


def test_drift_flags_doctored_shard_checkpoint(tmp_path):
    """A checkpoint whose outcomes were tampered with is statistically visible.

    The checkpoint fingerprint covers the campaign *plan*, not the
    outcomes, so a rewritten shard replays as trusted data — exactly
    the class of corruption (or seed bug) only the drift detector can
    catch.  Flipping every masked record of shard 1 to SDC makes its
    SDC rate incompatible with its three peers.
    """
    run_sharded_campaign(DRIFT_CONFIG, workers=1, shard_size=16, checkpoint_dir=tmp_path)
    doctored = shard_path(tmp_path, 1)
    rows = [json.loads(line) for line in doctored.read_text().splitlines()]
    for row in rows:
        if row.get("kind") == "record" and row["data"]["outcome"] == "masked":
            row["data"]["outcome"] = "sdc"
    doctored.write_text("".join(json.dumps(row) + "\n" for row in rows))

    tel = Telemetry(TelemetryConfig())
    resumed = run_sharded_campaign(
        DRIFT_CONFIG, workers=1, shard_size=16, checkpoint_dir=tmp_path, telemetry=tel
    )
    assert len(resumed.records) == DRIFT_CONFIG.injections
    events, _ = read_failure_log(tmp_path / FAILURE_LOG_NAME)
    drift = [e for e in events if e.get("event") == "drift"]
    assert drift, "tampered shard must be flagged"
    assert {e["shard"] for e in drift} == {1}
    assert all(e["p_value"] < e["alpha_per_test"] for e in drift)
    counter = tel.registry.counter("repro_drift_flags_total")
    assert sum(value for _, value in counter.items()) == len(drift)
