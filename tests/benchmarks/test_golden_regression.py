"""Golden-output regression pins.

Every benchmark is deterministic under a seed, and the whole
reproduction (golden diffs, FIT scaling, criticality tables) rests on
that.  These pins freeze the exact bytes of each benchmark's golden
output for one fixed seed so any accidental behavioural change —
dtype drift, reordered reductions, a changed default parameter — fails
loudly instead of silently shifting every campaign.

If a change is *intentional* (e.g. retuning a default parameter),
regenerate the table:

    python - <<'EOF'
    import hashlib, numpy as np
    from repro.benchmarks import create, names
    from repro.util import derive_rng
    for name in names():
        out = create(name).golden(derive_rng(2017, "golden-regression", name))
        print(name, hashlib.sha256(np.ascontiguousarray(out).tobytes()).hexdigest()[:16])
    EOF
"""

import hashlib

import numpy as np
import pytest

from repro.benchmarks import create, names
from repro.util.rng import derive_rng

#: name -> (sha256[:16] of raw bytes, shape, float64 sum).
GOLDEN_PINS: dict[str, tuple[str, tuple[int, ...], float]] = {
    "clamr": ("31c9998f5ded302b", (32, 32), 3.800938e03),
    "dgemm": ("e0f96f98ff85c6b6", (60, 60), -2.977245e01),
    "hotspot": ("b011af3b324b5575", (64, 64), 3.324355e05),
    "lavamd": ("56d60183fb89620b", (4, 4, 4, 32), 1.306300e03),
    "lud": ("85e021f72a6a5dc3", (48, 48), 2.381363e03),
    "nw": ("c29417d3fcd7499d", (65, 65), -7.152580e05),
}


def test_pins_cover_every_benchmark():
    assert set(GOLDEN_PINS) == set(names())


@pytest.mark.parametrize("name", sorted(GOLDEN_PINS))
def test_golden_output_pinned(name):
    digest, shape, total = GOLDEN_PINS[name]
    out = create(name).golden(derive_rng(2017, "golden-regression", name))
    assert out.shape == shape
    assert float(np.asarray(out, dtype=np.float64).sum()) == pytest.approx(
        total, rel=1e-5
    )
    assert (
        hashlib.sha256(np.ascontiguousarray(out).tobytes()).hexdigest()[:16] == digest
    )
