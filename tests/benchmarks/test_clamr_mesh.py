"""CLAMR AMR mesh: refinement, coarsening, painting."""

import numpy as np
import pytest

from repro.benchmarks.base import SimulationAborted
from repro.benchmarks.clamr.mesh import AmrMesh


def _mesh(base=4, max_level=2, capacity=400) -> AmrMesh:
    mesh = AmrMesh(base, max_level, capacity)
    mesh.init_dam_break()
    return mesh


def test_init_covers_domain():
    mesh = _mesh()
    n = mesh.live()
    assert n == 16
    assert np.all((mesh.x[:n] > 0) & (mesh.x[:n] < 1))
    assert np.all(mesh.lev[:n] == 0)


def test_constructor_validation():
    with pytest.raises(ValueError):
        AmrMesh(1, 1, 100)
    with pytest.raises(ValueError):
        AmrMesh(4, -1, 100)
    with pytest.raises(ValueError):
        AmrMesh(4, 1, 2)


def test_cell_size_by_level():
    mesh = _mesh(base=4)
    assert mesh.cell_size(0) == pytest.approx(0.25)
    assert mesh.cell_size(2) == pytest.approx(0.0625)
    assert mesh.finest_size == pytest.approx(0.0625)


def test_cell_size_rejects_corrupt_level():
    mesh = _mesh()
    with pytest.raises(IndexError):
        mesh.cell_size(99)
    with pytest.raises(IndexError):
        mesh.cell_size(-1)


def test_live_validates_counter():
    mesh = _mesh()
    mesh.ncells[...] = 0
    with pytest.raises(IndexError):
        mesh.live()
    mesh.ncells[...] = 10**6
    with pytest.raises(IndexError):
        mesh.live()


def test_refine_adds_three_cells_per_split():
    mesh = _mesh()
    created = mesh.refine(np.array([5]))
    assert created == 3
    assert mesh.live() == 19
    # Children share a fresh parent id and distinct slots.
    children = np.flatnonzero(mesh.parent[:19] == 0)
    assert len(children) == 4
    assert sorted(mesh.slot[children]) == [0, 1, 2, 3]
    assert np.all(mesh.lev[children] == 1)


def test_refine_conserves_state_values():
    mesh = _mesh()
    h_before = mesh.h[5]
    mesh.refine(np.array([5]))
    children = np.flatnonzero(mesh.parent[: mesh.live()] == 0)
    assert np.all(mesh.h[children] == h_before)


def test_refine_children_inside_parent():
    mesh = _mesh()
    cx, cy = mesh.x[5], mesh.y[5]
    size = float(mesh.cell_size(0))
    mesh.refine(np.array([5]))
    children = np.flatnonzero(mesh.parent[: mesh.live()] == 0)
    assert np.all(np.abs(mesh.x[children] - cx) <= size / 2)
    assert np.all(np.abs(mesh.y[children] - cy) <= size / 2)


def test_refine_at_max_level_is_noop():
    mesh = _mesh(max_level=0)
    assert mesh.refine(np.array([3])) == 0


def test_refine_past_capacity_aborts():
    mesh = _mesh(capacity=17)
    with pytest.raises(SimulationAborted):
        mesh.refine(np.arange(16))


def test_refine_rejects_corrupt_index():
    mesh = _mesh()
    with pytest.raises(IndexError):
        mesh.refine(np.array([500]))


def test_refine_empty_is_noop():
    mesh = _mesh()
    assert mesh.refine(np.array([], dtype=np.int64)) == 0
    assert mesh.live() == 16


def test_coarsen_merges_quiet_quartet():
    mesh = _mesh()
    mesh.refine(np.array([5]))
    n = mesh.live()
    removed = mesh.coarsen(np.ones(n, dtype=bool))
    assert removed == 3
    assert mesh.live() == 16
    assert np.all(mesh.lev[:16] == 0)


def test_coarsen_respects_quiet_mask():
    mesh = _mesh()
    mesh.refine(np.array([5]))
    n = mesh.live()
    quiet = np.ones(n, dtype=bool)
    children = np.flatnonzero(mesh.parent[:n] == 0)
    quiet[children[0]] = False  # one loud sibling blocks the merge
    assert mesh.coarsen(quiet) == 0


def test_coarsen_averages_state():
    mesh = _mesh()
    mesh.refine(np.array([5]))
    n = mesh.live()
    children = np.flatnonzero(mesh.parent[:n] == 0)
    mesh.h[children] = [1.0, 2.0, 3.0, 4.0]
    mesh.coarsen(np.ones(n, dtype=bool))
    assert 2.5 in mesh.h[: mesh.live()]


def test_coarsen_mask_shape_checked():
    mesh = _mesh()
    with pytest.raises(ValueError):
        mesh.coarsen(np.ones(3, dtype=bool))


def test_refine_coarsen_roundtrip_preserves_cell_count():
    mesh = _mesh()
    mesh.refine(np.array([2, 7, 11]))
    assert mesh.live() == 16 + 9
    mesh.coarsen(np.ones(mesh.live(), dtype=bool))
    assert mesh.live() == 16


def test_sample_grid_shape_and_values():
    mesh = _mesh(base=4, max_level=1)
    grid = mesh.sample_grid()
    assert grid.shape == (8, 8)
    assert set(np.unique(grid)) <= set(np.unique(mesh.h[: mesh.live()]))


def test_sample_grid_finer_cells_paint_over():
    mesh = _mesh(base=4, max_level=1)
    mesh.refine(np.array([0]))
    children = np.flatnonzero(mesh.parent[: mesh.live()] == 0)
    mesh.h[children] = 42.0
    grid = mesh.sample_grid()
    assert (grid == 42.0).sum() == 4  # each level-1 child covers one pixel
