"""Needleman-Wunsch benchmark: DP correctness and corruption semantics."""

import numpy as np
import pytest

from repro.benchmarks.base import SegmentationFault
from repro.benchmarks.nw import NeedlemanWunsch
from repro.util.rng import derive_rng


@pytest.fixture
def bench() -> NeedlemanWunsch:
    return NeedlemanWunsch(n=32, rows_per_step=4)


@pytest.fixture
def state(bench):
    return bench.make_state(derive_rng(41, "nw-test"))


def _naive_dp(state, n, penalty):
    f = np.zeros((n + 1, n + 1), dtype=np.int64)
    f[0, :] = -penalty * np.arange(n + 1)
    f[:, 0] = -penalty * np.arange(n + 1)
    for i in range(1, n + 1):
        for j in range(1, n + 1):
            sub = state.blosum[state.seq1[i - 1], state.seq2[j - 1]]
            f[i, j] = max(f[i - 1, j - 1] + sub, f[i - 1, j] - penalty, f[i, j - 1] - penalty)
    return f


def test_matches_naive_dp(bench, state):
    out = bench.run(state)
    assert np.array_equal(out, _naive_dp(state, 32, 10))


def test_deterministic(bench):
    a = bench.golden(derive_rng(1, "g"))
    b = bench.golden(derive_rng(1, "g"))
    assert np.array_equal(a, b)


def test_integer_output(bench, state):
    out = bench.run(state)
    assert out.dtype == np.int32
    assert bench.float_output is False
    assert bench.output_decimals is None


def test_param_validation():
    with pytest.raises(ValueError):
        NeedlemanWunsch(n=30, rows_per_step=4)
    with pytest.raises(ValueError):
        NeedlemanWunsch(penalty=0)


def test_blosum_symmetric(state):
    assert np.array_equal(state.blosum, state.blosum.T)


def test_zero_fault_on_unfilled_region_is_masked(bench, state):
    golden = bench.golden(derive_rng(41, "nw-test"))
    bench.step(state, 0)  # rows 1..4 filled
    state.score[20, 15] = 0  # row 20 still zero anyway
    for index in range(1, bench.num_steps(state)):
        bench.step(state, index)
    assert np.array_equal(bench.output(state), golden)


def test_fault_on_filled_region_propagates_downstream(bench, state):
    golden = bench.golden(derive_rng(41, "nw-test"))
    for index in range(4):
        bench.step(state, index)
    state.score[16, 16] += 500  # on the DP frontier
    for index in range(4, bench.num_steps(state)):
        bench.step(state, index)
    out = bench.output(state)
    mismatch = out != golden
    assert mismatch.any()
    # DP dependencies only flow down-right.
    assert not mismatch[:16, :].any()


def test_corrupted_residue_crashes(bench, state):
    state.seq1[10] = 99  # outside the substitution alphabet
    with pytest.raises(IndexError):
        bench.run(state)


def test_corrupted_penalty_crashes(bench, state):
    state.dp_ctl[1] = 10**9
    with pytest.raises(IndexError):
        bench.step(state, 0)


def test_corrupted_n_crashes(bench, state):
    state.dp_ctl[0] = 10**6
    with pytest.raises(IndexError):
        bench.step(state, 0)


def test_corrupted_cursor_skips_rows(bench, state):
    golden = bench.golden(derive_rng(41, "nw-test"))
    state.dp_ctl[2] = 33  # cursor claims everything is done
    out = bench.run(state)
    assert not np.array_equal(out, golden)


def test_corrupted_pointer_segfaults(bench, state):
    state.ptrs.addresses[0] = 7
    with pytest.raises(SegmentationFault):
        bench.step(state, 0)


def test_negative_sequence_value_crashes(bench, state):
    state.seq1[0] = -3
    with pytest.raises(IndexError):
        bench.step(state, 0)
