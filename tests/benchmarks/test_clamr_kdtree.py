"""CLAMR K-D tree: build/query correctness and corruption behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks.base import BenchmarkHang
from repro.benchmarks.clamr.kdtree import KdTree
from repro.util.rng import derive_rng


def _points(n=50, seed=3):
    rng = derive_rng(seed, "kd")
    return rng.random(n), rng.random(n)


def test_build_leaf_only_for_small_sets():
    x, y = _points(5)
    tree = KdTree.build(x, y, leaf_size=8)
    assert int(tree.n_nodes[()]) == 1
    assert tree.left[0] == -1


def test_build_empty_rejected():
    with pytest.raises(ValueError):
        KdTree.build(np.array([]), np.array([]))


def test_build_leaf_size_validated():
    x, y = _points(5)
    with pytest.raises(ValueError):
        KdTree.build(x, y, leaf_size=0)


def test_perm_is_permutation():
    x, y = _points(64)
    tree = KdTree.build(x, y, leaf_size=4)
    assert sorted(tree.perm) == list(range(64))


def test_query_on_exact_points_returns_self():
    x, y = _points(40)
    tree = KdTree.build(x, y, leaf_size=4)
    found = tree.query_nearest(x, y, x, y)
    assert np.array_equal(found, np.arange(40))


def test_query_near_points_mostly_exact():
    x, y = _points(60)
    tree = KdTree.build(x, y, leaf_size=6)
    qx = x + 1e-6
    qy = y - 1e-6
    found = tree.query_nearest(x, y, qx, qy)
    # Points that are themselves split pivots can fall just across
    # their own plane: leaf-local search misses those, by design.
    assert (found == np.arange(60)).mean() > 0.85


def test_query_matches_brute_force_majority():
    x, y = _points(80, seed=9)
    tree = KdTree.build(x, y, leaf_size=8)
    rng = derive_rng(10, "q")
    qx, qy = rng.random(40), rng.random(40)
    found = tree.query_nearest(x, y, qx, qy)
    d2 = (qx[:, None] - x[None, :]) ** 2 + (qy[:, None] - y[None, :]) ** 2
    exact = d2.argmin(axis=1)
    # Leaf-local search is approximate: requires a strong majority of
    # exact hits (the CLAMR neighbour queries are near-interior points).
    assert (found == exact).mean() > 0.6


def test_corrupted_child_pointer_crashes():
    x, y = _points(60)
    tree = KdTree.build(x, y, leaf_size=4)
    tree.left[0] = 10_000
    with pytest.raises(IndexError):
        tree.query_nearest(x, y, x[:5], y[:5])


def test_corrupted_cycle_hangs():
    x, y = _points(60)
    tree = KdTree.build(x, y, leaf_size=4)
    tree.left[0] = 0  # root points at itself for half the queries
    tree.right[0] = 0
    with pytest.raises(BenchmarkHang):
        tree.query_nearest(x, y, x[:5], y[:5])


def test_corrupted_node_count_crashes():
    x, y = _points(60)
    tree = KdTree.build(x, y, leaf_size=4)
    tree.n_nodes[...] = -3
    with pytest.raises(IndexError):
        tree.query_nearest(x, y, x[:2], y[:2])


def test_corrupted_split_dim_crashes():
    x, y = _points(60)
    tree = KdTree.build(x, y, leaf_size=4)
    tree.split_dim[0] = 7
    with pytest.raises(IndexError):
        tree.query_nearest(x, y, x[:2], y[:2])


def test_corrupted_leaf_range_crashes():
    x, y = _points(30)
    tree = KdTree.build(x, y, leaf_size=4)
    leaves = np.flatnonzero(tree.left[: int(tree.n_nodes[()])] == -1)
    tree.leaf_lo[leaves[0]] = 999
    with pytest.raises(IndexError):
        tree.query_nearest(x, y, x, y)


def test_corrupted_leaf_candidate_crashes():
    x, y = _points(30)
    tree = KdTree.build(x, y, leaf_size=4)
    tree.perm[0] = 500
    with pytest.raises(IndexError):
        tree.query_nearest(x, y, x, y)


def test_corrupted_split_value_wrong_neighbour_not_crash():
    x, y = _points(60)
    tree = KdTree.build(x, y, leaf_size=4)
    tree.split_val[0] = -100.0  # every query now descends right
    found = tree.query_nearest(x, y, x, y)
    assert found.shape == (60,)  # silent wrong answers (SDC path)


def test_variables_expose_backing_stores():
    x, y = _points(30)
    tree = KdTree.build(x, y, leaf_size=4)
    variables = tree.variables()
    assert variables["tree_left"] is tree.left
    assert set(variables) >= {"tree_split_val", "tree_perm", "tree_n_nodes"}


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 120), leaf=st.integers(1, 16))
def test_build_covers_all_points_in_leaves(n, leaf):
    x, y = _points(n, seed=n)
    tree = KdTree.build(x, y, leaf_size=leaf)
    nodes = int(tree.n_nodes[()])
    covered = []
    for node in range(nodes):
        if tree.left[node] == -1:
            covered.extend(tree.perm[tree.leaf_lo[node] : tree.leaf_hi[node]])
    assert sorted(covered) == list(range(n))
