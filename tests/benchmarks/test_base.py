"""Benchmark base protocol: guards, pointers, windows."""

import numpy as np
import pytest

from repro.benchmarks.base import (
    BenchmarkHang,
    PointerTable,
    SegmentationFault,
    bounded_range,
    checked_index,
)
from repro.benchmarks.registry import create


def test_bounded_range_normal():
    assert list(bounded_range(2, 8, 2)) == [2, 4, 6]


def test_bounded_range_zero_step_hangs():
    with pytest.raises(BenchmarkHang):
        bounded_range(0, 10, 0)


def test_bounded_range_huge_trip_hangs():
    with pytest.raises(BenchmarkHang):
        bounded_range(0, 10**9)


def test_bounded_range_negative_step():
    assert list(bounded_range(5, 0, -2)) == [5, 3, 1]


def test_checked_index_ok():
    assert checked_index(3, 5) == 3


@pytest.mark.parametrize("bad", [-1, 5, 10**12, -(10**12)])
def test_checked_index_rejects(bad):
    with pytest.raises(IndexError):
        checked_index(bad, 5)


def test_pointer_table_resolve_untouched_is_same_object():
    arr = np.arange(6, dtype=np.float64)
    table = PointerTable({"a": arr})
    assert table.resolve("a", arr) is arr


def test_pointer_table_null_pointer_segfaults():
    arr = np.arange(6, dtype=np.float64)
    table = PointerTable({"a": arr})
    table.addresses[0] = 0
    with pytest.raises(SegmentationFault):
        table.resolve("a", arr)


def test_pointer_table_wild_pointer_segfaults():
    arr = np.arange(6, dtype=np.float64)
    table = PointerTable({"a": arr})
    table.addresses[0] ^= np.int64(1) << np.int64(40)
    with pytest.raises(SegmentationFault):
        table.resolve("a", arr)


def test_pointer_table_in_allocation_shift_reads_garbage():
    arr = np.arange(6, dtype=np.int64)
    table = PointerTable({"a": arr})
    table.addresses[0] += 8  # one element forward, still in allocation
    shifted = table.resolve("a", arr)
    assert shifted is not arr
    assert shifted[0] == arr[1]


def test_pointer_table_misaligned_shift():
    arr = np.arange(4, dtype=np.float64)
    table = PointerTable({"a": arr})
    table.addresses[0] += 3  # misaligned: garbage floats, no crash
    shifted = table.resolve("a", arr)
    assert shifted.shape == arr.shape


def test_pointer_table_distinct_allocations():
    a = np.zeros(100)
    b = np.zeros(100)
    table = PointerTable({"a": a, "b": b})
    assert table.addresses[0] != table.addresses[1]
    span = abs(int(table.addresses[1]) - int(table.addresses[0]))
    assert span >= a.nbytes  # allocations do not overlap


def test_pointer_table_empty_rejected():
    with pytest.raises(ValueError):
        PointerTable({})


def test_window_of_step_partition():
    bench = create("dgemm")
    state = bench.make_state(np.random.default_rng(0))
    total = bench.num_steps(state)
    windows = [bench.window_of_step(s, total) for s in range(total)]
    assert windows[0] == 0
    assert windows[-1] == bench.num_windows - 1
    assert sorted(set(windows)) == list(range(bench.num_windows))
    assert windows == sorted(windows)  # monotone


def test_window_of_step_validates():
    bench = create("dgemm")
    with pytest.raises(ValueError):
        bench.window_of_step(0, 0)


def test_describe_contains_metadata():
    bench = create("nw")
    meta = bench.describe()
    assert meta["name"] == "nw"
    assert meta["num_windows"] == 4
    assert meta["float_output"] is False
    assert "params" in meta


def test_unknown_param_rejected():
    with pytest.raises(TypeError):
        create("dgemm", bogus=1)


def test_frames_are_unique_ordered():
    bench = create("hotspot")
    state = bench.make_state(np.random.default_rng(0))
    frames = bench.frames(state, 0)
    assert len(frames) == len(set(frames))
    assert "global" in frames
