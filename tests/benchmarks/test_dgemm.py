"""DGEMM benchmark: correctness and corruption semantics."""

import numpy as np
import pytest

from repro.benchmarks.base import BenchmarkHang, SegmentationFault
from repro.benchmarks.dgemm import Dgemm
from repro.util.rng import derive_rng


@pytest.fixture
def bench() -> Dgemm:
    return Dgemm()


@pytest.fixture
def state(bench):
    return bench.make_state(derive_rng(11, "dgemm-test"))


def test_matches_numpy(bench, state):
    out = bench.run(state)
    np.testing.assert_allclose(out, state.a_src @ state.b_src, atol=1e-10)


def test_deterministic(bench):
    a = bench.golden(derive_rng(5, "g"))
    b = bench.golden(derive_rng(5, "g"))
    assert np.array_equal(a, b)


def test_param_validation():
    with pytest.raises(ValueError):
        Dgemm(n=60, n_threads=7)
    with pytest.raises(ValueError):
        Dgemm(k_block=0)
    with pytest.raises(ValueError):
        Dgemm(col_block=7)
    with pytest.raises(ValueError):
        Dgemm(init_steps=0)


def test_step_count(bench, state):
    assert bench.num_steps(state) == 2 + 60 // 3


def test_kernel_frame_only_after_init(bench, state):
    names_at_0 = {v.name for v in bench.variables(state, 0)}
    names_at_5 = {v.name for v in bench.variables(state, 5)}
    assert "thread_ctl" not in names_at_0
    assert "thread_ctl" in names_at_5
    assert "operand_ptrs" in names_at_5


def test_control_classes(bench, state):
    classes = {v.name: v.var_class for v in bench.variables(state, 5)}
    assert classes["thread_ctl"] == "control"
    assert classes["a"] == "matrix"
    assert classes["operand_ptrs"] == "pointer"


def _run_from(bench, state, start):
    for index in range(start, bench.num_steps(state)):
        bench.step(state, index)
    return bench.output(state)


def test_corrupted_row_bound_out_of_range_crashes(bench, state):
    bench.step(state, 0)
    bench.step(state, 1)
    state.thread_ctl[3, 1] = 10_000  # end row far out of range
    with pytest.raises(IndexError):
        _run_from(bench, state, 2)


def test_corrupted_k_stride_zero_hangs(bench, state):
    bench.step(state, 0)
    bench.step(state, 1)
    state.thread_ctl[3, 4] = 0
    with pytest.raises(BenchmarkHang):
        _run_from(bench, state, 2)


def test_empty_tile_is_silent_wrong_output(bench, state):
    golden = bench.golden(derive_rng(11, "dgemm-test"))
    bench.step(state, 0)
    bench.step(state, 1)
    state.thread_ctl[3, 1] = 0  # end <= start: tile never computed
    out = _run_from(bench, state, 2)
    mismatch = out != golden
    assert mismatch.any()
    rows = np.unique(np.nonzero(mismatch)[0])
    assert set(rows) <= set(range(9, 12))  # only thread 3's rows


def test_corrupted_operand_pointer_segfaults(bench, state):
    bench.step(state, 0)
    bench.step(state, 1)
    state.ptrs.addresses[0] = 42
    with pytest.raises(SegmentationFault):
        _run_from(bench, state, 2)


def test_shifted_pointer_changes_output_not_crash(bench, state):
    golden = bench.golden(derive_rng(11, "dgemm-test"))
    bench.step(state, 0)
    bench.step(state, 1)
    state.ptrs.addresses[0] += 16  # 2 elements forward, in-allocation
    out = _run_from(bench, state, 2)
    assert not np.array_equal(out, golden)
    assert np.isfinite(out).all()


def test_corrupted_dims_crash(bench, state):
    bench.step(state, 0)
    bench.step(state, 1)
    state.dims[1] = -5
    with pytest.raises(IndexError):
        bench.step(state, 2)


def test_corrupted_matrix_element_is_local_column_damage(bench, state):
    golden = bench.golden(derive_rng(11, "dgemm-test"))
    bench.step(state, 0)
    bench.step(state, 1)
    state.b[7, 9] += 100.0
    out = _run_from(bench, state, 2)
    mismatch = out != golden
    cols = np.unique(np.nonzero(mismatch)[1])
    assert cols.tolist() == [9]  # a B-element fault damages one column


def test_init_cursor_corruption_leaves_stale_rows(bench, state):
    golden = bench.golden(derive_rng(11, "dgemm-test"))
    state.init_cursor[...] = 10**6  # cursor corrupted before any init
    out = _run_from(bench, state, 0)
    # Init still copies (cursor only lowers the start), output intact.
    assert np.allclose(out, golden)


def test_output_is_copy(bench, state):
    out = bench.run(state)
    out[0, 0] = 1e9
    assert state.c[0, 0] != 1e9
