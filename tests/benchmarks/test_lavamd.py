"""LavaMD benchmark: N-body physics and corruption semantics."""

import numpy as np
import pytest

from repro.benchmarks.base import SegmentationFault
from repro.benchmarks.lavamd import LavaMD
from repro.util.rng import derive_rng


@pytest.fixture
def bench() -> LavaMD:
    return LavaMD(boxes1d=3, par_per_box=6)


@pytest.fixture
def state(bench):
    return bench.make_state(derive_rng(21, "lava-test"))


def test_output_shape_is_3d_plus_features(bench):
    out = bench.golden(derive_rng(21, "lava-test"))
    assert out.shape == (3, 3, 3, 6 * 4)
    assert np.isfinite(out).all()


def test_output_dims_declared_3d(bench):
    assert bench.output_dims == 3


def test_deterministic(bench):
    a = bench.golden(derive_rng(2, "g"))
    b = bench.golden(derive_rng(2, "g"))
    assert np.array_equal(a, b)


def test_param_validation():
    with pytest.raises(ValueError):
        LavaMD(boxes1d=0)
    with pytest.raises(ValueError):
        LavaMD(par_per_box=0)


def test_neighbour_table_structure(state):
    nb = 3
    # The centre box has all 27 neighbours; corner boxes have 8.
    centre = (1 * nb + 1) * nb + 1
    corner = 0
    assert (state.box_nei[centre] >= 0).sum() == 27
    assert (state.box_nei[corner] >= 0).sum() == 8


def test_self_is_own_neighbour(state):
    # Slot 13 is (0, 0, 0) offset: the home box itself.
    for box in range(state.box_nei.shape[0]):
        assert state.box_nei[box, 13] == box


def test_potential_positive(bench, state):
    bench.run(state)
    # fv[..., 0] accumulates q * exp(-u2) over pairs: strictly positive.
    assert (state.fv[:, :, 0] > 0).all()


def test_corrupted_neighbour_index_crashes(bench, state):
    state.box_nei[5, 3] = 1_000_000
    with pytest.raises(IndexError):
        bench.step(state, 5)


def test_negative_neighbour_means_boundary_not_crash(bench, state):
    state.box_nei[5, 3] = -7  # any negative is "no neighbour"
    bench.step(state, 5)  # must not raise


def test_corrupted_box_ctl_crashes(bench, state):
    state.box_ctl[1] = 10**9
    with pytest.raises(IndexError):
        bench.step(state, 0)


def test_corrupted_pointer_segfaults(bench, state):
    state.ptrs.addresses[0] = -1
    with pytest.raises(SegmentationFault):
        bench.step(state, 0)


def test_charge_fault_contaminates_neighbourhood(bench, state):
    golden = bench.golden(derive_rng(21, "lava-test"))
    state.qv[13, 2] *= 1e6  # box (1,1,1), exacerbated by exp kernel
    out = bench.run(state)
    wrong_boxes = np.argwhere(
        np.any(out.reshape(27, -1) != golden.reshape(27, -1), axis=1)
    ).ravel()
    # The fault spreads to several boxes around the victim: the cubic
    # signature's source.
    assert len(wrong_boxes) >= 8


def test_far_fault_with_strong_cutoff_is_attenuated(bench, state):
    golden = bench.golden(derive_rng(21, "lava-test"))
    # Tiny perturbation of a particle: far boxes see exp(-u2)-suppressed
    # contributions, so most of the output is unchanged at 4 decimals.
    state.rv[0, 0, 0] += 1e-4
    out = bench.run(state)
    same = np.round(out, 2) == np.round(golden, 2)
    assert same.mean() > 0.5
