"""HotSpot benchmark: physics sanity and corruption semantics."""

import numpy as np
import pytest

from repro.benchmarks.base import SegmentationFault
from repro.benchmarks.hotspot import HotSpot
from repro.util.rng import derive_rng


@pytest.fixture
def bench() -> HotSpot:
    return HotSpot(iterations=30)


@pytest.fixture
def state(bench):
    return bench.make_state(derive_rng(3, "hs-test"))


def test_golden_is_finite_and_physical(bench):
    out = bench.golden(derive_rng(3, "hs-test"))
    assert np.isfinite(out).all()
    # Temperatures stay between ambient and a plausible hot-spot cap.
    assert out.min() >= 79.0
    assert out.max() < 500.0


def test_deterministic(bench):
    a = bench.golden(derive_rng(9, "g"))
    b = bench.golden(derive_rng(9, "g"))
    assert np.array_equal(a, b)


def test_param_validation():
    with pytest.raises(ValueError):
        HotSpot(rows=2)
    with pytest.raises(ValueError):
        HotSpot(iterations=0)


def test_hot_blocks_get_hotter(bench, state):
    bench.run(state)
    hot = state.temp[state.power > state.power.max() * 0.9]
    cold = state.temp[state.power == 0.0]
    if hot.size and cold.size:
        assert hot.mean() > cold.mean()


def test_perturbation_attenuates(bench):
    """The paper's key HotSpot property: errors are damped over time."""
    clean = bench.make_state(derive_rng(4, "p"))
    dirty = bench.make_state(derive_rng(4, "p"))
    bench.step(clean, 0)
    bench.step(dirty, 0)
    dirty.temp[30, 30] += 40.0
    for index in range(1, bench.num_steps(clean)):
        bench.step(clean, index)
        bench.step(dirty, index)
    final_delta = np.abs(dirty.temp - clean.temp).max()
    assert final_delta < 40.0 * 0.1  # at least 10x attenuation in 30 iters


def test_file_image_faults_after_load_are_masked(bench, state):
    golden = bench.golden(derive_rng(3, "hs-test"))
    bench.step(state, 0)  # file images consumed here
    state.temp_init[:, :] = 9999.0
    state.power_init[:, :] = 9999.0
    for index in range(1, bench.num_steps(state)):
        bench.step(state, index)
    assert np.array_equal(bench.output(state), golden)


def test_scratch_buffer_faults_are_masked(bench, state):
    golden = bench.golden(derive_rng(3, "hs-test"))
    bench.step(state, 0)
    state.temp_next[:, :] = -1.0
    for index in range(1, bench.num_steps(state)):
        bench.step(state, index)
    assert np.array_equal(bench.output(state), golden)


def test_corrupted_grid_dims_crash(bench, state):
    state.grid_ctl[0] = 100_000
    with pytest.raises(IndexError):
        bench.step(state, 0)
    state.grid_ctl[0] = 1
    with pytest.raises(IndexError):
        bench.step(state, 0)


def test_zeroed_capacitance_produces_sdc_not_crash(bench, state):
    state.consts[0] = 0.0  # division by zero -> inf/NaN, no exception
    for index in range(bench.num_steps(state)):
        bench.step(state, index)
    out = bench.output(state)
    assert not np.isfinite(out).all()


def test_corrupted_pointer_segfaults(bench, state):
    state.ptrs.addresses[1] = 1
    with pytest.raises(SegmentationFault):
        bench.step(state, 0)


def test_power_fault_shifts_steady_state(bench, state):
    golden = bench.golden(derive_rng(3, "hs-test"))
    bench.step(state, 0)
    state.power[20, 20] += 0.05  # extra watts on one cell
    for index in range(1, bench.num_steps(state)):
        bench.step(state, index)
    out = bench.output(state)
    assert abs(out[20, 20] - golden[20, 20]) > 0.01


def test_variable_classes(bench, state):
    classes = {v.name: v.var_class for v in bench.variables(state, 0)}
    assert classes["consts"] == "constant"
    assert classes["grid_ctl"] == "control"
    assert classes["temp"] == "grid"
    assert classes["grid_ptrs"] == "pointer"
