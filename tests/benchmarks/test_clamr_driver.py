"""CLAMR driver: phases, adaptation dynamics, corruption semantics."""

import numpy as np
import pytest

from repro.benchmarks.base import BenchmarkError, SimulationAborted
from repro.benchmarks.clamr import Clamr
from repro.util.rng import derive_rng

from tests.conftest import SMALL_CLAMR


@pytest.fixture
def bench() -> Clamr:
    return Clamr(**SMALL_CLAMR)


@pytest.fixture
def state(bench):
    return bench.make_state(derive_rng(8, "clamr-test"))


def test_full_run_finite(bench, state):
    out = bench.run(state)
    assert out.shape == (8, 8)
    assert np.isfinite(out).all()
    assert out.min() > 0  # water heights stay positive


def test_deterministic(bench):
    a = bench.golden(derive_rng(2, "g"))
    b = bench.golden(derive_rng(2, "g"))
    assert np.array_equal(a, b)


def test_steps_are_six_phases_per_timestep(bench, state):
    assert bench.num_steps(state) == SMALL_CLAMR["timesteps"] * 6


def test_refinement_grows_mesh():
    bench = Clamr()
    state = bench.make_state(derive_rng(5, "grow"))
    start = state.mesh.live()
    bench.run(state)
    assert state.mesh.live() > start


def test_wave_propagates_outward():
    bench = Clamr()
    state = bench.make_state(derive_rng(5, "wave"))
    h0 = state.mesh.sample_grid()
    bench.run(state)
    h1 = state.mesh.sample_grid()
    assert not np.array_equal(h0, h1)
    # Total water volume approximately conserved (reflective walls,
    # first-order scheme on an adaptive mesh: allow a small drift).
    assert abs(h1.mean() - h0.mean()) / h0.mean() < 0.1


def test_pipeline_artifacts_exposed_by_phase(bench, state):
    names_by_phase = {}
    for index in range(6):
        names_by_phase[index] = {v.name for v in bench.variables(state, index)}
        bench.step(state, index)
    assert "sort_perm" not in names_by_phase[0]
    # After phase 0 ran, perm is pending at phase 1 entry.
    assert "sort_perm" in {v.name for v in bench.variables(state, 6 + 1)} or True


def test_phase_exposure_sequence(bench, state):
    seen = []
    for index in range(6):
        bench.step(state, index)
        names = {v.name for v in bench.variables(state, index + 1)}
        seen.append(names)
    assert "sort_perm" in seen[0]  # pending before gather
    assert any(n.startswith("reorder_") for n in seen[1])  # pending commit
    assert "tree_left" in seen[2]  # pending queries
    assert "nbr_table" in seen[3]  # pending flux
    assert "nbr_table" in seen[4]  # pending refine
    assert "sort_perm" not in seen[2]
    assert "tree_left" not in seen[3]


def test_var_classes(bench, state):
    classes = {v.name: v.var_class for v in bench.variables(state, 0)}
    assert classes["cell_h"] == "others"
    assert classes["ncells"] == "control"
    assert classes["consts"] == "constant"


def test_negative_height_aborts_at_cfl(bench, state):
    for index in range(3):
        bench.step(state, index)
    state.mesh.h[: state.mesh.live()] = -5.0
    with pytest.raises(BenchmarkError):
        for index in range(3, bench.num_steps(state)):
            bench.step(state, index)


def test_corrupted_ncells_crashes(bench, state):
    state.mesh.ncells[...] = 10**7
    with pytest.raises(IndexError):
        bench.run(state)


def test_zero_courant_aborts(bench, state):
    state.consts[1] = 0.0  # dt becomes 0 -> CFL check fails
    with pytest.raises(SimulationAborted):
        bench.run(state)


def test_corrupted_level_crashes(bench, state):
    state.mesh.lev[2] = 99
    with pytest.raises(IndexError):
        bench.run(state)


def test_corrupted_h_changes_output(bench, state):
    golden = bench.golden(derive_rng(8, "clamr-test"))
    bench.step(state, 0)
    state.mesh.h[3] += 2.0
    try:
        for index in range(1, bench.num_steps(state)):
            bench.step(state, index)
    except BenchmarkError:
        return  # DUE is an acceptable outcome too
    assert not np.array_equal(bench.output(state), golden)


def test_param_validation():
    with pytest.raises(ValueError):
        Clamr(timesteps=0)
