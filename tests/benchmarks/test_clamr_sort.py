"""CLAMR cell sort: Morton keys and the reorder pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks.clamr.mesh import AmrMesh
from repro.benchmarks.clamr.sort import (
    apply_permutation,
    commit_reorder,
    compute_sort_permutation,
    gather_reorder_buffers,
    morton_keys,
)


def _mesh() -> AmrMesh:
    mesh = AmrMesh(4, 1, 200)
    mesh.init_dam_break()
    return mesh


def test_morton_keys_quadrant_order():
    # Z-order: (0,0) < (1,0)? Morton interleaves x into even bits and y
    # into odd bits, so y dominates within a level.
    keys = morton_keys(np.array([0.1, 0.6, 0.1, 0.6]), np.array([0.1, 0.1, 0.6, 0.6]), 8)
    assert keys[0] == keys.min()
    assert keys[3] == keys.max()


def test_morton_keys_distinct_for_distinct_cells():
    mesh = _mesh()
    n = mesh.live()
    keys = morton_keys(mesh.x[:n], mesh.y[:n], 8)
    assert len(np.unique(keys)) == n


def test_morton_keys_handle_nan_inf():
    keys = morton_keys(np.array([np.nan, np.inf, -np.inf]), np.array([0.5, 0.5, 0.5]), 8)
    assert np.isfinite(keys).all()


def test_morton_resolution_validation():
    with pytest.raises(ValueError):
        morton_keys(np.array([0.5]), np.array([0.5]), 0)
    with pytest.raises(ValueError):
        morton_keys(np.array([0.5]), np.array([0.5]), 1 << 20)


def test_sort_permutation_is_valid():
    mesh = _mesh()
    perm = compute_sort_permutation(mesh)
    assert sorted(perm) == list(range(mesh.live()))


def test_sorted_mesh_keys_nondecreasing():
    mesh = _mesh()
    apply_permutation(mesh, compute_sort_permutation(mesh))
    n = mesh.live()
    keys = morton_keys(mesh.x[:n], mesh.y[:n], 8)
    assert np.all(np.diff(keys) >= 0)


def test_reorder_preserves_multiset_of_cells():
    mesh = _mesh()
    n = mesh.live()
    before = sorted(zip(mesh.x[:n], mesh.y[:n], mesh.h[:n]))
    apply_permutation(mesh, compute_sort_permutation(mesh))
    after = sorted(zip(mesh.x[:n], mesh.y[:n], mesh.h[:n]))
    assert before == after


def test_gather_then_commit_equals_apply():
    mesh_a = _mesh()
    mesh_b = _mesh()
    perm = compute_sort_permutation(mesh_a)
    buffers = gather_reorder_buffers(mesh_a, perm)
    commit_reorder(mesh_a, buffers)
    apply_permutation(mesh_b, perm)
    n = mesh_a.live()
    assert np.array_equal(mesh_a.x[:n], mesh_b.x[:n])
    assert np.array_equal(mesh_a.h[:n], mesh_b.h[:n])


def test_corrupted_perm_out_of_range_crashes():
    mesh = _mesh()
    perm = compute_sort_permutation(mesh)
    perm[3] = 9999
    with pytest.raises(IndexError):
        gather_reorder_buffers(mesh, perm)


def test_corrupted_perm_duplicate_scrambles_silently():
    mesh = _mesh()
    perm = compute_sort_permutation(mesh)
    perm[3] = perm[4]  # duplicates a cell, drops another: SDC not crash
    apply_permutation(mesh, perm)
    n = mesh.live()
    coords = set(zip(mesh.x[:n], mesh.y[:n]))
    assert len(coords) == n - 1


def test_wrong_length_perm_crashes():
    mesh = _mesh()
    with pytest.raises(IndexError):
        apply_permutation(mesh, np.arange(5))


def test_corrupted_buffer_shape_crashes_commit():
    mesh = _mesh()
    buffers = gather_reorder_buffers(mesh, compute_sort_permutation(mesh))
    buffers["h"] = buffers["h"][:-2]
    with pytest.raises(IndexError):
        commit_reorder(mesh, buffers)


def test_corrupted_buffer_values_become_mesh_state():
    mesh = _mesh()
    buffers = gather_reorder_buffers(mesh, compute_sort_permutation(mesh))
    buffers["h"][0] = 123.456
    commit_reorder(mesh, buffers)
    assert 123.456 in mesh.h[: mesh.live()]


@settings(max_examples=30, deadline=None)
@given(
    xs=st.lists(st.floats(0.01, 0.99), min_size=2, max_size=16),
)
def test_morton_keys_deterministic(xs):
    x = np.array(xs)
    y = x[::-1].copy()
    a = morton_keys(x, y, 64)
    b = morton_keys(x, y, 64)
    assert np.array_equal(a, b)
