"""Benchmark registry and paper subsets."""

import pytest

from repro.benchmarks.registry import (
    BEAM_BENCHMARKS,
    BENCHMARKS,
    INJECTION_BENCHMARKS,
    TIME_WINDOW_BENCHMARKS,
    create,
    names,
)


def test_six_benchmarks_registered():
    assert names() == ("clamr", "dgemm", "hotspot", "lavamd", "lud", "nw")


def test_nw_not_in_beam_subset():
    # "NW was only tested with our fault injection."
    assert "nw" not in BEAM_BENCHMARKS
    assert len(BEAM_BENCHMARKS) == 5


def test_injection_covers_all_six():
    assert set(INJECTION_BENCHMARKS) == set(BENCHMARKS)


def test_lavamd_not_in_time_window_plots():
    assert "lavamd" not in TIME_WINDOW_BENCHMARKS
    assert len(TIME_WINDOW_BENCHMARKS) == 5


def test_create_with_params():
    bench = create("dgemm", n=40, n_threads=10, col_block=2)
    assert bench.params["n"] == 40


def test_create_unknown_raises():
    with pytest.raises(KeyError):
        create("linpack")


def test_paper_window_counts():
    # Section 6: CLAMR 9 windows, DGEMM/HotSpot 5, LUD/NW 4.
    expected = {"clamr": 9, "dgemm": 5, "hotspot": 5, "lud": 4, "nw": 4}
    for name, windows in expected.items():
        assert create(name).num_windows == windows


def test_lavamd_is_only_3d_benchmark():
    dims = {name: create(name).output_dims for name in names()}
    assert dims.pop("lavamd") == 3
    assert all(d == 2 for d in dims.values())


def test_paper_scale_params_validate():
    # Instantiating at the irradiated-run size class must pass each
    # benchmark's parameter validation (no run — golden at this scale
    # takes minutes in Python).
    for name in names():
        cls = BENCHMARKS[name]
        bench = cls(**cls.paper_scale_params())
        assert bench.params != {} and bench.name == name


def test_paper_scale_strictly_larger():
    for name in names():
        cls = BENCHMARKS[name]
        default = cls.default_params()
        paper = cls.paper_scale_params()
        size_keys = [k for k in ("n", "rows", "base", "boxes1d") if k in default]
        assert any(paper[k] > default[k] for k in size_keys), name


def test_aux_benchmarks_creatable_but_not_in_paper_set():
    from repro.benchmarks.registry import AUX_BENCHMARKS

    assert "chaos" in AUX_BENCHMARKS
    bench = create("chaos")
    assert bench.name == "chaos"
    # Auxiliary benchmarks must never leak into the paper's sets.
    assert "chaos" not in names()
    assert "chaos" not in INJECTION_BENCHMARKS
