"""LUD benchmark: factorisation correctness and corruption semantics."""

import numpy as np
import pytest

from repro.benchmarks.base import SegmentationFault
from repro.benchmarks.lud import Lud
from repro.util.rng import derive_rng


@pytest.fixture
def bench() -> Lud:
    return Lud()


@pytest.fixture
def state(bench):
    return bench.make_state(derive_rng(31, "lud-test"))


def test_lu_reconstructs_input(bench, state):
    original = state.matrix.astype(np.float64).copy()
    out = bench.run(state)
    n = out.shape[0]
    lower = np.tril(out, -1) + np.eye(n)
    upper = np.triu(out)
    rel = np.abs(lower @ upper - original).max() / np.abs(original).max()
    assert rel < 1e-5


def test_input_copy_untouched_by_run(bench, state):
    before = state.input_copy.copy()
    bench.run(state)
    assert np.array_equal(state.input_copy, before)


def test_input_copy_faults_are_masked(bench, state):
    golden = bench.golden(derive_rng(31, "lud-test"))
    state.input_copy[:, :] = -1.0
    out = bench.run(state)
    assert np.array_equal(out, golden)


def test_deterministic(bench):
    a = bench.golden(derive_rng(1, "g"))
    b = bench.golden(derive_rng(1, "g"))
    assert np.array_equal(a, b)


def test_param_validation():
    with pytest.raises(ValueError):
        Lud(n=50, block=4)
    with pytest.raises(ValueError):
        Lud(block=0)


def test_early_fault_spreads_further_than_late_fault(bench):
    """The in-place working set: early faults contaminate more."""

    def wrong_count(step_of_fault: int) -> int:
        golden = bench.golden(derive_rng(31, "lud-test"))
        state = bench.make_state(derive_rng(31, "lud-test"))
        for index in range(bench.num_steps(state)):
            if index == step_of_fault:
                state.matrix[30, 30] += 10.0
            bench.step(state, index)
        return int((bench.output(state) != golden).sum())

    assert wrong_count(1) > wrong_count(10)


def test_corrupted_block_bounds_crash(bench, state):
    state.block_ctl[5] = (40, 20, 48)  # b0 >= b1
    bench.step(state, 0)
    with pytest.raises(IndexError):
        bench.step(state, 5)


def test_corrupted_block_bounds_overflow_crash(bench, state):
    state.block_ctl[2, 2] = 10**7  # n out of range
    with pytest.raises(IndexError):
        bench.step(state, 2)


def test_stale_block_corruption_is_masked(bench, state):
    golden = bench.golden(derive_rng(31, "lud-test"))
    for index in range(4):
        bench.step(state, index)
    state.block_ctl[1] = (999, -1, 7)  # block 1 already done: stale
    for index in range(4, bench.num_steps(state)):
        bench.step(state, index)
    assert np.array_equal(bench.output(state), golden)


def test_corrupted_pointer_segfaults(bench, state):
    state.ptrs.addresses[0] = 123
    with pytest.raises(SegmentationFault):
        bench.step(state, 0)


def test_shifted_pointer_stales_output(bench, state):
    golden = bench.golden(derive_rng(31, "lud-test"))
    state.ptrs.addresses[0] += 4  # factorise a detached shifted copy
    out = bench.run(state)
    assert not np.array_equal(out, golden)


def test_zero_pivot_is_sdc_not_crash(bench, state):
    state.matrix[0, 0] = 0.0
    out = bench.run(state)  # inf/NaN propagate silently
    assert not np.isfinite(out).all()
