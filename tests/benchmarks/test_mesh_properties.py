"""Property-based invariants of the CLAMR AMR mesh.

Whatever sequence of refinements and coarsenings the simulation
performs, the mesh must remain a partition of the unit square: cell
areas sum to one, levels stay within bounds, sibling groups stay
consistent, and the painted sample grid is fully covered.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks.clamr.mesh import AmrMesh
from repro.benchmarks.clamr.sort import apply_permutation, compute_sort_permutation
from repro.util.rng import derive_rng


def _area_sum(mesh: AmrMesh) -> float:
    n = mesh.live()
    return float((mesh.cell_size(mesh.lev[:n]) ** 2).sum())


def _apply_ops(mesh: AmrMesh, ops: list[tuple[str, int]]) -> None:
    rng_ops = 0
    for kind, seed in ops:
        n = mesh.live()
        rng = derive_rng(seed, "mesh-ops", str(rng_ops))
        rng_ops += 1
        if kind == "refine":
            count = int(rng.integers(1, max(2, n // 4)))
            victims = rng.choice(n, size=min(count, n), replace=False)
            try:
                mesh.refine(victims)
            except Exception:
                return  # capacity abort: fine, mesh unchanged semantics
        elif kind == "coarsen":
            quiet = rng.random(mesh.live()) < 0.8
            mesh.coarsen(quiet)
        else:
            apply_permutation(mesh, compute_sort_permutation(mesh))


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["refine", "coarsen", "sort"]), st.integers(0, 1000)
        ),
        min_size=0,
        max_size=8,
    )
)
def test_mesh_stays_a_partition(ops):
    mesh = AmrMesh(4, 2, 800)
    mesh.init_dam_break()
    _apply_ops(mesh, ops)
    n = mesh.live()
    # Partition of the unit square: areas sum to 1.
    assert _area_sum(mesh) == pytest.approx(1.0, abs=1e-9)
    # Levels within bounds.
    assert np.all((mesh.lev[:n] >= 0) & (mesh.lev[:n] <= 2))
    # Centres strictly inside the domain.
    assert np.all((mesh.x[:n] > 0) & (mesh.x[:n] < 1))
    assert np.all((mesh.y[:n] > 0) & (mesh.y[:n] < 1))
    # Cell centres are unique (no duplicated cells).
    coords = set(zip(mesh.x[:n].tolist(), mesh.y[:n].tolist()))
    assert len(coords) == n


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["refine", "coarsen"]), st.integers(0, 1000)),
        min_size=1,
        max_size=6,
    )
)
def test_sibling_groups_complete(ops):
    mesh = AmrMesh(4, 2, 800)
    mesh.init_dam_break()
    _apply_ops(mesh, ops)
    n = mesh.live()
    parents = mesh.parent[:n]
    for pid in np.unique(parents[parents >= 0]):
        members = np.flatnonzero(parents == pid)
        # Sibling groups never exceed a quartet; a member that was
        # itself re-refined leaves its old group (it becomes a child of
        # a new parent), so partial groups of 1-3 are legitimate — but
        # slots stay distinct and remaining siblings share a level.
        assert 1 <= members.size <= 4, pid
        slots = mesh.slot[members].tolist()
        assert len(set(slots)) == len(slots)
        assert len(set(mesh.lev[members].tolist())) == 1


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500))
def test_sample_grid_fully_painted(seed):
    mesh = AmrMesh(4, 1, 400)
    mesh.init_dam_break()
    rng = derive_rng(seed, "paint")
    victims = rng.choice(16, size=int(rng.integers(1, 8)), replace=False)
    mesh.refine(victims)
    grid = mesh.sample_grid()
    # Every pixel belongs to some cell: heights are physical, not the
    # zero fill value.
    assert np.all(grid > 0)
    values = set(np.unique(grid))
    heights = set(np.unique(mesh.h[: mesh.live()]))
    assert values <= heights
