"""Event-driven beam campaign."""

import numpy as np
import pytest

from repro.beam.experiment import BeamExperiment, BeamRecord
from repro.faults.outcome import Outcome
from repro.util.jsonlog import load_records


def test_golden_is_bitwise_not_quantized():
    experiment = BeamExperiment("dgemm", seed=77)
    # Unlike CAROL-FI, beam comparison keeps full precision.
    assert not np.array_equal(experiment.golden, np.round(experiment.golden, 2))


def test_trial_record_fields(dgemm_beam):
    record = dgemm_beam.trials[0]
    assert record.benchmark == "dgemm"
    assert record.resource
    assert 0 <= record.strike_step < record.total_steps
    assert record.outcome in Outcome.all()


def test_unoccupied_strikes_are_masked(dgemm_beam):
    for record in dgemm_beam.trials:
        if not record.occupied:
            assert record.outcome is Outcome.MASKED
            assert record.effect == "dead_state"


def test_some_strikes_are_unoccupied(dgemm_beam):
    assert any(not r.occupied for r in dgemm_beam.trials)


def test_all_outcomes_observed(dgemm_beam):
    outcomes = {r.outcome for r in dgemm_beam.trials}
    assert outcomes == set(Outcome.all())


def test_sdc_records_have_patterns(dgemm_beam):
    sdcs = dgemm_beam.sdc_records()
    assert sdcs
    for record in sdcs:
        assert record.sdc_metrics["pattern"] in ("single", "line", "square", "cubic", "random")
        assert record.sdc_metrics["max_rel_err"] > 0


def test_probability_and_counts(dgemm_beam):
    total = sum(dgemm_beam.count(o) for o in Outcome.all())
    assert total == len(dgemm_beam)
    assert dgemm_beam.probability(Outcome.MASKED) > 0.3


def test_deterministic_trials():
    a = BeamExperiment("lud", seed=5).run_trial(3)
    b = BeamExperiment("lud", seed=5).run_trial(3)
    assert a.to_dict() == b.to_dict()


def test_record_roundtrip(dgemm_beam):
    record = dgemm_beam.trials[0]
    assert BeamRecord.from_dict(record.to_dict()) == record


def test_campaign_log(tmp_path):
    experiment = BeamExperiment("lud", seed=9)
    result = experiment.run_campaign(20, log_path=tmp_path / "beam.jsonl")
    raw = load_records(tmp_path / "beam.jsonl")
    assert len(raw) == 20
    assert raw[0]["benchmark"] == "lud"
    assert len(result) == 20


def test_trials_validated():
    experiment = BeamExperiment("lud", seed=9)
    with pytest.raises(ValueError):
        experiment.run_campaign(0)


def test_benchmark_params_forwarded():
    experiment = BeamExperiment(
        "nw" if False else "lud", seed=9, benchmark_params={"n": 16, "block": 4}
    )
    assert experiment.total_steps == 4
