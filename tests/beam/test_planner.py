"""Statistics-driven beam-time planning."""

import pytest

from repro.beam.flux import LanceBeam
from repro.beam.planner import plan_campaign
from repro.util.stats import required_events_for_relative_ci


@pytest.fixture(scope="module")
def plan():
    return plan_campaign(("dgemm", "lud"), seed=2017, pilot_trials=120)


def test_plan_covers_requested_benchmarks(plan):
    assert [e.benchmark for e in plan.entries] == ["dgemm", "lud"]


def test_target_matches_ci_criterion(plan):
    target = required_events_for_relative_ci(0.10)
    for entry in plan.entries:
        assert entry.target_events == target


def test_trials_driven_by_rarer_outcome(plan):
    for entry in plan.entries:
        rarest = min(p for p in (entry.p_sdc, entry.p_due) if p > 0)
        expected = entry.target_events / rarest
        assert entry.required_trials == pytest.approx(expected, rel=0.01)


def test_beam_time_consistent_with_fluence(plan):
    sigma = 0.0
    from repro.beam.sensitivity import DEFAULT_SENSITIVITY

    sigma = DEFAULT_SENSITIVITY.total_cross_section_cm2
    for entry in plan.entries:
        fluence = entry.required_trials / sigma
        hours = plan.beam.beam_seconds_for_fluence(fluence) / 3600.0
        assert entry.beam_hours == pytest.approx(hours)


def test_total_beam_hours_same_order_as_paper(plan):
    # The paper spent >500 beam hours on five benchmarks; two of ours
    # should land within the same couple orders of magnitude.
    assert 1.0 < plan.total_beam_hours < 5000.0


def test_render_mentions_paper(plan):
    text = plan.render()
    assert "beam campaign plan" in text
    assert "500 hours" in text
    assert "dgemm" in text


def test_higher_flux_means_less_time():
    slow = plan_campaign(("lud",), pilot_trials=100, beam=LanceBeam(flux_n_cm2_s=1e5))
    fast = plan_campaign(("lud",), pilot_trials=100, beam=LanceBeam(flux_n_cm2_s=2.5e6))
    assert fast.total_beam_hours < slow.total_beam_hours


def test_tighter_ci_needs_more_trials():
    loose = plan_campaign(("lud",), pilot_trials=100, relative_ci=0.2)
    tight = plan_campaign(("lud",), pilot_trials=100, relative_ci=0.05)
    assert tight.entries[0].required_trials > loose.entries[0].required_trials


def test_pilot_validated():
    with pytest.raises(ValueError):
        plan_campaign(("lud",), pilot_trials=5)
