"""Poisson beam-session mode and the single-strike tuning check."""

import pytest

from repro.beam.facility import BeamSession
from repro.beam.flux import LanceBeam
from repro.util.rng import derive_rng


def _session(flux=1e6, exec_seconds=1.0) -> BeamSession:
    return BeamSession(LanceBeam(flux_n_cm2_s=flux), execution_seconds=exec_seconds)


def test_strikes_per_execution_mean():
    session = _session(flux=1e6)
    sigma = session.sensitivity.total_cross_section_cm2
    assert session.strikes_per_execution_mean == pytest.approx(sigma * 1e6)


def test_simulate_counts_consistent():
    session = _session()
    stats = session.simulate(5000, derive_rng(3, "fac"))
    assert stats.executions == 5000
    assert stats.beam_seconds == pytest.approx(5000.0)
    assert stats.fluence_n_cm2 == pytest.approx(5000.0 * 1e6)
    assert stats.strikes >= 0
    assert stats.multi_strike_executions <= stats.strikes


def test_poisson_mean_matches_analytic():
    session = _session(flux=2.5e6, exec_seconds=10.0)
    stats = session.simulate(20000, derive_rng(4, "fac"))
    assert stats.strikes_per_execution == pytest.approx(
        session.strikes_per_execution_mean, rel=0.1
    )


def test_multi_strike_negligible_at_low_flux():
    session = _session(flux=1e5)
    stats = session.simulate(20000, derive_rng(5, "fac"))
    # sigma*flux ~ 1e-2 strikes/exec: double events are rare.
    assert stats.multi_strike_fraction < 1e-3


def test_max_flux_for_error_rate_inverse():
    session = _session()
    flux = session.max_flux_for_error_rate(1e-4, visible_probability=0.1)
    sigma = session.sensitivity.total_cross_section_cm2
    # At that flux, errors/execution is exactly the target.
    assert sigma * flux * 0.1 * 1.0 == pytest.approx(1e-4)


def test_max_flux_validation():
    session = _session()
    with pytest.raises(ValueError):
        session.max_flux_for_error_rate(0.0, 0.1)
    with pytest.raises(ValueError):
        session.max_flux_for_error_rate(1e-4, 0.0)


def test_execution_time_validated():
    with pytest.raises(ValueError):
        BeamSession(LanceBeam(), execution_seconds=0.0)


def test_simulate_validates_executions():
    with pytest.raises(ValueError):
        _session().simulate(0, derive_rng(1, "x"))
