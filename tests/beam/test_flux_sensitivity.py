"""Beam flux configuration and the device sensitivity table."""

import pytest

from repro.beam.flux import LanceBeam
from repro.beam.sensitivity import (
    DEFAULT_SENSITIVITY,
    DeviceSensitivity,
    ResourceSensitivity,
)
from repro.phi.resources import ResourceClass
from repro.util.rng import derive_rng


def test_flux_range_enforced():
    LanceBeam(flux_n_cm2_s=1e5)
    LanceBeam(flux_n_cm2_s=2.5e6)
    with pytest.raises(ValueError):
        LanceBeam(flux_n_cm2_s=1e4)
    with pytest.raises(ValueError):
        LanceBeam(flux_n_cm2_s=1e7)


def test_acceleration_6_to_8_orders():
    assert 1e6 < LanceBeam(flux_n_cm2_s=1e5).acceleration < 1e8
    assert 1e8 < LanceBeam(flux_n_cm2_s=2.5e6).acceleration < 1e10


def test_fluence_accumulation():
    beam = LanceBeam(flux_n_cm2_s=1e6)
    assert beam.fluence(3600.0) == pytest.approx(3.6e9)
    assert beam.beam_seconds_for_fluence(3.6e9) == pytest.approx(3600.0)


def test_fluence_validation():
    beam = LanceBeam()
    with pytest.raises(ValueError):
        beam.fluence(-1.0)
    with pytest.raises(ValueError):
        beam.beam_seconds_for_fluence(-1.0)


def test_default_sensitivity_covers_all_resources():
    assert set(DEFAULT_SENSITIVITY.entries) == set(ResourceClass.all())


def test_default_total_cross_section_plausible():
    sigma = DEFAULT_SENSITIVITY.total_cross_section_cm2
    assert 5e-8 < sigma < 5e-7  # device-scale cross section


def test_effective_below_total():
    assert (
        DEFAULT_SENSITIVITY.effective_cross_section_cm2
        < DEFAULT_SENSITIVITY.total_cross_section_cm2
    )


def test_sampling_follows_cross_sections():
    rng = derive_rng(6, "sense")
    draws = [DEFAULT_SENSITIVITY.sample_resource(rng) for _ in range(4000)]
    l2_share = draws.count(ResourceClass.L2_CACHE) / len(draws)
    expected = (
        DEFAULT_SENSITIVITY.entries[ResourceClass.L2_CACHE].cross_section_cm2
        / DEFAULT_SENSITIVITY.total_cross_section_cm2
    )
    assert abs(l2_share - expected) < 0.05


def test_entry_validation():
    with pytest.raises(ValueError):
        ResourceSensitivity(ResourceClass.L1_CACHE, -1.0, 0.5)
    with pytest.raises(ValueError):
        ResourceSensitivity(ResourceClass.L1_CACHE, 1e-8, 1.5)


def test_duplicate_entries_rejected():
    entry = ResourceSensitivity(ResourceClass.L1_CACHE, 1e-8, 0.5)
    with pytest.raises(ValueError):
        DeviceSensitivity([entry, entry])


def test_empty_table_rejected():
    with pytest.raises(ValueError):
        DeviceSensitivity([])


def test_occupancy_lookup():
    occ = DEFAULT_SENSITIVITY.occupancy_of(ResourceClass.FPU_LOGIC)
    assert 0.0 < occ < 1.0


def test_altitude_flux_sea_level_identity():
    from repro.beam.flux import natural_flux_at_altitude

    assert natural_flux_at_altitude(0.0) == pytest.approx(13.0)


def test_altitude_flux_reference_ratios():
    from repro.beam.flux import natural_flux_at_altitude

    denver = natural_flux_at_altitude(1609.0) / 13.0
    leadville = natural_flux_at_altitude(3100.0) / 13.0
    assert 3.0 < denver < 4.5
    assert 9.0 < leadville < 13.0


def test_altitude_flux_lanl_factor():
    from repro.beam.flux import LANL_ALTITUDE_M, natural_flux_at_altitude

    factor = natural_flux_at_altitude(LANL_ALTITUDE_M) / 13.0
    assert 4.5 < factor < 7.0  # Trinity sees ~5-6x the sea-level flux


def test_altitude_flux_validates():
    from repro.beam.flux import natural_flux_at_altitude

    with pytest.raises(ValueError):
        natural_flux_at_altitude(-10.0)
