"""FIT estimation and bookkeeping."""

import pytest

from repro.analysis.spatial import ErrorPattern
from repro.beam.experiment import BeamCampaignResult, BeamRecord
from repro.beam.fit import estimate_fit
from repro.beam.flux import LanceBeam
from repro.beam.sensitivity import DeviceSensitivity, ResourceSensitivity
from repro.faults.outcome import Outcome
from repro.phi.resources import ResourceClass


def _synthetic_campaign(sdc=10, due=5, masked=85, sigma=1e-7):
    sensitivity = DeviceSensitivity(
        [ResourceSensitivity(ResourceClass.FPU_LOGIC, sigma, 1.0)]
    )
    trials = []
    index = 0

    def record(outcome, pattern=None):
        nonlocal index
        metrics = {"pattern": pattern, "max_rel_err": 1.0} if pattern else {}
        rec = BeamRecord(
            benchmark="synthetic",
            trial=index,
            resource="fpu_logic",
            effect="garbage_result",
            strike_step=0,
            total_steps=10,
            occupied=True,
            outcome=outcome,
            sdc_metrics=metrics,
        )
        index += 1
        return rec

    for _ in range(sdc):
        trials.append(record(Outcome.SDC, "line"))
    for _ in range(due):
        trials.append(record(Outcome.DUE))
    for _ in range(masked):
        trials.append(record(Outcome.MASKED))
    return BeamCampaignResult("synthetic", trials, sensitivity)


def test_fit_hand_computed():
    # sigma=1e-7 cm^2, flux 13 n/cm^2/h, P(SDC)=0.1:
    # FIT = 1e-7 * 13 * 1e9 * 0.1 = 130.
    report = estimate_fit(_synthetic_campaign())
    assert report.sdc.fit == pytest.approx(130.0)
    assert report.due.fit == pytest.approx(65.0)
    assert report.total_fit == pytest.approx(195.0)


def test_fit_ci_contains_point():
    report = estimate_fit(_synthetic_campaign())
    assert report.sdc.lower < report.sdc.fit < report.sdc.upper
    assert report.sdc.events == 10


def test_pattern_partition_sums_to_sdc():
    report = estimate_fit(_synthetic_campaign())
    partition_total = sum(e.fit for e in report.sdc_by_pattern.values())
    assert partition_total == pytest.approx(report.sdc.fit)
    assert report.sdc_by_pattern["line"].fit == pytest.approx(report.sdc.fit)


def test_pattern_keys_are_the_paper_five():
    report = estimate_fit(_synthetic_campaign())
    assert set(report.sdc_by_pattern) == {
        p.value for p in ErrorPattern.observable()
    }


def test_fluence_bookkeeping():
    report = estimate_fit(_synthetic_campaign(), beam=LanceBeam(flux_n_cm2_s=1e6))
    # 100 trials / 1e-7 cm^2 = 1e9 n/cm^2 fluence.
    assert report.equivalent_fluence_n_cm2 == pytest.approx(1e9)
    assert report.equivalent_beam_hours == pytest.approx(1e9 / 1e6 / 3600.0)
    assert report.equivalent_natural_hours == pytest.approx(1e9 / 13.0)


def test_mtbf_inverse_of_fit():
    report = estimate_fit(_synthetic_campaign())
    assert report.mtbf_hours() == pytest.approx(1e9 / 195.0)
    assert report.mtbf_hours(devices=10) == pytest.approx(1e9 / 1950.0)


def test_mtbf_infinite_when_no_failures():
    report = estimate_fit(_synthetic_campaign(sdc=0, due=0, masked=50))
    assert report.mtbf_hours() == float("inf")


def test_empty_campaign_rejected():
    campaign = _synthetic_campaign(sdc=0, due=0, masked=0)
    with pytest.raises(ValueError):
        estimate_fit(campaign)


def test_real_campaign_fit_in_paper_ballpark(dgemm_beam):
    report = estimate_fit(dgemm_beam)
    assert 10.0 < report.sdc.fit < 600.0
    assert 1.0 < report.due.fit < 300.0
