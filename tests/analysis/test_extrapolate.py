"""Machine-scale MTBF projections (Section 4.2)."""

import pytest

from repro.analysis.extrapolate import (
    EXASCALE_BOARDS,
    TRINITY_BOARDS,
    project_machine,
)


def test_board_counts_match_paper():
    assert TRINITY_BOARDS == 19_000
    assert EXASCALE_BOARDS == 10 * TRINITY_BOARDS


def test_paper_trinity_anchor():
    # ~190 FIT at Trinity scale -> failures every ~11.5 days.
    projection = project_machine(190.0, TRINITY_BOARDS)
    assert 11.0 < projection.mtbf_days < 12.5


def test_exascale_is_almost_daily():
    projection = project_machine(190.0, EXASCALE_BOARDS)
    assert projection.mtbf_days < 1.5
    assert projection.events_per_day > 0.65


def test_mtbf_scales_inverse_with_boards():
    one = project_machine(100.0, 1)
    many = project_machine(100.0, 1000)
    assert one.mtbf_hours == pytest.approx(many.mtbf_hours * 1000)


def test_validation():
    with pytest.raises(ValueError):
        project_machine(0.0, 10)
    with pytest.raises(ValueError):
        project_machine(10.0, 0)
