"""Criticality grouping and the paper's portion aggregation."""

import pytest

from repro.analysis.criticality import (
    PORTION_MAPS,
    criticality_by_portion,
    portion_of_record,
)
from repro.faults.outcome import InjectionRecord, Outcome
from repro.faults.site import FaultSite


def _record(benchmark, var_class, outcome):
    return InjectionRecord(
        benchmark=benchmark,
        run_index=0,
        site=FaultSite("f", "v", 0, "float64", var_class=var_class),
        fault_model="single",
        bits=(0,),
        interrupt_step=0,
        total_steps=10,
        time_window=0,
        num_windows=5,
        outcome=outcome,
    )


def test_pointer_counts_with_matrices_for_dgemm():
    record = _record("dgemm", "pointer", Outcome.DUE)
    assert portion_of_record(record) == "matrices"


def test_clamr_three_way_split():
    assert portion_of_record(_record("clamr", "sort", Outcome.SDC)) == "sort"
    assert portion_of_record(_record("clamr", "tree", Outcome.SDC)) == "tree"
    assert portion_of_record(_record("clamr", "control", Outcome.SDC)) == "others"
    assert portion_of_record(_record("clamr", "others", Outcome.SDC)) == "others"


def test_unknown_benchmark_falls_back_to_class():
    assert portion_of_record(_record("mystery", "weird", Outcome.SDC)) == "weird"


def test_portion_maps_cover_all_benchmarks():
    assert set(PORTION_MAPS) == {"dgemm", "lud", "nw", "hotspot", "lavamd", "clamr"}


def test_reports_sorted_by_harmfulness():
    records = (
        [_record("dgemm", "control", Outcome.DUE)] * 8
        + [_record("dgemm", "control", Outcome.MASKED)] * 2
        + [_record("dgemm", "matrix", Outcome.MASKED)] * 9
        + [_record("dgemm", "matrix", Outcome.SDC)] * 1
    )
    reports = criticality_by_portion(records)
    assert [r.portion for r in reports] == ["control", "matrices"]
    assert reports[0].harmful_fraction == pytest.approx(0.8)
    assert reports[0].due.value == pytest.approx(0.8)
    assert reports[1].sdc.value == pytest.approx(0.1)


def test_report_counts(dgemm_campaign):
    reports = criticality_by_portion(dgemm_campaign.records)
    assert sum(r.injections for r in reports) == len(dgemm_campaign.records)
    assert {r.portion for r in reports} <= {"matrices", "control"}


def test_empty_rejected():
    with pytest.raises(ValueError):
        criticality_by_portion([])
