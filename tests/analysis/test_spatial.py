"""Spatial pattern classification of corrupted outputs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.spatial import (
    ErrorPattern,
    classify_mask,
    classify_outputs,
    max_relative_error,
    wrong_mask,
)


def _mask(shape, coords):
    mask = np.zeros(shape, dtype=bool)
    for coord in coords:
        mask[coord] = True
    return mask


def test_none_pattern():
    assert classify_mask(_mask((8, 8), [])) is ErrorPattern.NONE


def test_single_pattern():
    assert classify_mask(_mask((8, 8), [(3, 4)])) is ErrorPattern.SINGLE


def test_row_line_pattern():
    coords = [(2, j) for j in range(1, 7)]
    assert classify_mask(_mask((8, 8), coords)) is ErrorPattern.LINE


def test_column_line_pattern():
    coords = [(i, 5) for i in range(8)]
    assert classify_mask(_mask((8, 8), coords)) is ErrorPattern.LINE


def test_sparse_row_still_line():
    coords = [(2, 0), (2, 3), (2, 7)]  # scattered along one row
    assert classify_mask(_mask((8, 8), coords)) is ErrorPattern.LINE


def test_square_pattern():
    coords = [(i, j) for i in range(2, 5) for j in range(3, 6)]
    assert classify_mask(_mask((8, 8), coords)) is ErrorPattern.SQUARE


def test_random_pattern():
    coords = [(0, 0), (7, 7), (0, 7), (3, 2)]
    assert classify_mask(_mask((8, 8), coords)) is ErrorPattern.RANDOM


def test_cubic_pattern():
    mask = np.zeros((4, 4, 4), dtype=bool)
    mask[1:3, 1:3, 1:3] = True
    assert classify_mask(mask, spatial_dims=3) is ErrorPattern.CUBIC


def test_sparse_3d_is_random():
    mask = np.zeros((4, 4, 4), dtype=bool)
    mask[0, 0, 0] = mask[3, 3, 3] = mask[0, 3, 0] = True
    assert classify_mask(mask, spatial_dims=3) is ErrorPattern.RANDOM


def test_trailing_feature_axes_collapsed():
    # LavaMD-style (x, y, z, features) output.
    mask = np.zeros((4, 4, 4, 8), dtype=bool)
    mask[2, 2, 2, 5] = True
    assert classify_mask(mask, spatial_dims=3) is ErrorPattern.SINGLE
    mask[2, 2, 2, 6] = True  # two features of the same box: still 1 box
    # two wrong elements, one spatial site -> LINE degenerates? No:
    # spanning == 0, total_wrong == 2 -> LINE by the <=1 spanning rule.
    assert classify_mask(mask, spatial_dims=3) in (
        ErrorPattern.LINE,
        ErrorPattern.SINGLE,
    )


def test_spatial_dims_validated():
    with pytest.raises(ValueError):
        classify_mask(np.zeros((4, 4), dtype=bool), spatial_dims=0)
    with pytest.raises(ValueError):
        classify_mask(np.zeros(4, dtype=bool), spatial_dims=3)


def test_wrong_mask_exact():
    golden = np.array([1.0, 2.0, 3.0])
    observed = np.array([1.0, 2.5, 3.0])
    assert wrong_mask(golden, observed).tolist() == [False, True, False]


def test_wrong_mask_nan_equal():
    golden = np.array([np.nan, 1.0])
    observed = np.array([np.nan, 1.0])
    assert not wrong_mask(golden, observed).any()


def test_wrong_mask_with_tolerance():
    golden = np.array([100.0, 100.0])
    observed = np.array([100.4, 120.0])
    mask = wrong_mask(golden, observed, tolerance=0.01)
    assert mask.tolist() == [False, True]


def test_wrong_mask_zero_golden_never_tolerated():
    golden = np.array([0.0])
    observed = np.array([1e-9])
    assert wrong_mask(golden, observed, tolerance=0.15).tolist() == [True]


def test_wrong_mask_nonfinite_never_tolerated():
    golden = np.array([5.0])
    observed = np.array([np.inf])
    assert wrong_mask(golden, observed, tolerance=0.5).tolist() == [True]


def test_wrong_mask_validates():
    with pytest.raises(ValueError):
        wrong_mask(np.zeros(3), np.zeros(4))
    with pytest.raises(ValueError):
        wrong_mask(np.zeros(3), np.zeros(3), tolerance=-1.0)


def test_classify_outputs_convenience():
    golden = np.zeros((5, 5))
    observed = golden.copy()
    observed[2, 2] = 1.0
    assert classify_outputs(golden, observed) is ErrorPattern.SINGLE


def test_max_relative_error_simple():
    golden = np.array([10.0, 20.0])
    observed = np.array([11.0, 20.0])
    assert max_relative_error(golden, observed) == pytest.approx(0.1)


def test_max_relative_error_clean_is_zero():
    golden = np.array([1.0, 2.0])
    assert max_relative_error(golden, golden.copy()) == 0.0


def test_max_relative_error_zero_golden_is_inf():
    golden = np.array([0.0])
    observed = np.array([0.5])
    assert max_relative_error(golden, observed) == np.inf


def test_max_relative_error_nan_observed_is_inf():
    golden = np.array([3.0])
    observed = np.array([np.nan])
    assert max_relative_error(golden, observed) == np.inf


def test_observable_patterns():
    observable = ErrorPattern.observable()
    assert ErrorPattern.NONE not in observable
    assert len(observable) == 5


@settings(max_examples=50, deadline=None)
@given(
    coords=st.sets(
        st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=0, max_size=12
    )
)
def test_classification_total_and_consistent(coords):
    mask = _mask((8, 8), list(coords))
    pattern = classify_mask(mask)
    if len(coords) == 0:
        assert pattern is ErrorPattern.NONE
    elif len(coords) == 1:
        assert pattern is ErrorPattern.SINGLE
    else:
        assert pattern in (
            ErrorPattern.LINE,
            ErrorPattern.SQUARE,
            ErrorPattern.RANDOM,
        )
