"""SDC severity qualification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.severity import (
    SeverityClass,
    SeverityThresholds,
    classify_severity,
    severity_census,
)


def test_negligible_below_tolerance():
    assert classify_severity(0.01, 0.5) is SeverityClass.NEGLIGIBLE


def test_tolerable_small_both():
    assert classify_severity(0.05, 0.001) is SeverityClass.TOLERABLE


def test_attenuated_wide_but_small():
    # HotSpot's signature: many elements, tiny deviations.
    assert classify_severity(0.05, 0.4) is SeverityClass.ATTENUATED


def test_localized_large_but_narrow():
    # ABFT territory: one badly wrong value.
    assert classify_severity(10.0, 0.0005) is SeverityClass.LOCALIZED


def test_critical_large_and_wide():
    assert classify_severity(np.inf, 0.3) is SeverityClass.CRITICAL


def test_thresholds_validated():
    with pytest.raises(ValueError):
        SeverityThresholds(tolerance=-0.1)
    with pytest.raises(ValueError):
        SeverityThresholds(tolerance=0.2, magnitude=0.1)
    with pytest.raises(ValueError):
        SeverityThresholds(spread=0.0)


def test_inputs_validated():
    with pytest.raises(ValueError):
        classify_severity(-1.0, 0.5)
    with pytest.raises(ValueError):
        classify_severity(1.0, 1.5)


def test_custom_thresholds_shift_boundaries():
    strict = SeverityThresholds(tolerance=0.001, magnitude=0.01, spread=0.001)
    assert classify_severity(0.05, 0.0005, strict) is SeverityClass.LOCALIZED
    loose = SeverityThresholds(tolerance=0.001, magnitude=1.0, spread=0.5)
    assert classify_severity(0.05, 0.0005, loose) is SeverityClass.TOLERABLE


def test_census_counts_and_covers_all_classes():
    metrics = [
        {"max_rel_err": 0.001, "wrong_fraction": 0.5},
        {"max_rel_err": 5.0, "wrong_fraction": 0.5},
        {"max_rel_err": 5.0, "wrong_fraction": 0.0001},
    ]
    census = severity_census(metrics)
    assert set(census) == {c.value for c in SeverityClass}
    assert census["negligible"] == 1
    assert census["critical"] == 1
    assert census["localized"] == 1
    assert sum(census.values()) == 3


def test_census_on_real_campaign(dgemm_beam):
    metrics = [r.sdc_metrics for r in dgemm_beam.sdc_records()]
    census = severity_census(metrics)
    assert sum(census.values()) == len(metrics)
    # Beam corruption is rarely all-negligible at a 2% tolerance.
    assert census["critical"] + census["localized"] + census["attenuated"] > 0


@settings(max_examples=60, deadline=None)
@given(
    rel=st.floats(0.0, 1e6, allow_nan=False),
    frac=st.floats(0.0, 1.0, allow_nan=False),
)
def test_classification_total(rel, frac):
    assert classify_severity(rel, frac) in SeverityClass
