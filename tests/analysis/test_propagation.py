"""Propagation profiling."""

import pytest

from repro.analysis.propagation import PropagationProfile, propagation_profile
from repro.benchmarks.registry import create
from repro.faults.models import FaultModel
from repro.faults.site import FaultSite


def test_profile_structure():
    bench = create("lud", n=24, block=4)
    profile = propagation_profile(bench, seed=1, model=FaultModel.RANDOM, interrupt_step=1)
    assert profile.benchmark == "lud"
    assert profile.interrupt_step == 1
    assert profile.total_steps == 6
    if not profile.crashed:
        assert len(profile.points) == 5  # one sample per post-injection step
        for point in profile.points:
            assert point.steps_since_injection == point.step - 1
            assert 0.0 <= point.wrong_fraction <= 1.0


def test_profile_deterministic():
    bench = create("nw", n=16, rows_per_step=4)
    a = propagation_profile(bench, seed=5, model=FaultModel.SINGLE)
    b = propagation_profile(bench, seed=5, model=FaultModel.SINGLE)
    assert a.interrupt_step == b.interrupt_step
    assert [p.wrong_elements for p in a.points] == [p.wrong_elements for p in b.points]


def test_some_faults_propagate():
    bench = create("lud", n=24, block=4)
    spread = []
    for seed in range(15):
        profile = propagation_profile(bench, seed=seed, model=FaultModel.RANDOM)
        if not profile.crashed and profile.final_wrong > 1:
            spread.append(profile)
    assert spread, "no propagating fault in 15 profiles"
    # In-place LU compounds: corruption grows monotonically for at
    # least one observed fault.
    assert any(p.monotone_growth_fraction() == 1.0 for p in spread)


def test_crash_terminates_profile():
    bench = create("nw", n=16, rows_per_step=4)
    crashed = None
    for seed in range(40):
        profile = propagation_profile(bench, seed=seed, model=FaultModel.RANDOM)
        if profile.crashed:
            crashed = profile
            break
    assert crashed is not None
    assert crashed.crash_detail


def test_interrupt_step_validated():
    bench = create("nw", n=16, rows_per_step=4)
    with pytest.raises(ValueError):
        propagation_profile(bench, seed=1, interrupt_step=999)


def test_empty_profile_properties():
    profile = PropagationProfile(
        benchmark="x",
        site=FaultSite("f", "v", 0, "float64"),
        fault_model="single",
        interrupt_step=0,
        total_steps=4,
        points=[],
    )
    assert profile.final_wrong == 0
    assert profile.peak_wrong == 0
    assert profile.monotone_growth_fraction() == 1.0
