"""PVF aggregation over injection records."""

import pytest

from repro.analysis.pvf import (
    outcome_shares,
    pvf,
    pvf_by_fault_model,
    pvf_by_window,
)
from repro.faults.outcome import Outcome


def test_outcome_shares_sum_to_one(dgemm_campaign):
    shares = outcome_shares(dgemm_campaign.records)
    assert sum(shares.values()) == pytest.approx(1.0)
    assert all(0.0 <= v <= 1.0 for v in shares.values())


def test_pvf_matches_manual_count(dgemm_campaign):
    records = dgemm_campaign.records
    manual = sum(1 for r in records if r.outcome is Outcome.SDC) / len(records)
    estimate = pvf(records, Outcome.SDC)
    assert estimate.value == pytest.approx(manual)
    assert estimate.lower <= estimate.value <= estimate.upper


def test_pvf_by_fault_model_covers_models(dgemm_campaign):
    table = pvf_by_fault_model(dgemm_campaign.records, Outcome.SDC)
    assert set(table) == {"single", "double", "random", "zero"}


def test_pvf_by_fault_model_explicit_order(dgemm_campaign):
    table = pvf_by_fault_model(
        dgemm_campaign.records, Outcome.DUE, models=("zero", "single")
    )
    assert list(table) == ["zero", "single"]


def test_pvf_by_window_covers_windows(dgemm_campaign):
    table = pvf_by_window(dgemm_campaign.records, Outcome.SDC)
    assert set(table) <= set(range(5))
    for estimate in table.values():
        assert 0.0 <= estimate.value <= 1.0


def test_pvf_by_window_weights_are_per_window(dgemm_campaign):
    # Each window's PVF is conditional on the window's own injections:
    # the weighted average over windows equals the overall PVF.
    records = dgemm_campaign.records
    table = pvf_by_window(records, Outcome.SDC)
    weighted = sum(
        est.value * sum(1 for r in records if r.time_window == w)
        for w, est in table.items()
    )
    assert weighted / len(records) == pytest.approx(pvf(records, Outcome.SDC).value)


def test_empty_records_rejected():
    with pytest.raises(ValueError):
        outcome_shares([])
    with pytest.raises(ValueError):
        pvf([], Outcome.SDC)
    with pytest.raises(ValueError):
        pvf_by_fault_model([], Outcome.SDC)
    with pytest.raises(ValueError):
        pvf_by_window([], Outcome.SDC)
