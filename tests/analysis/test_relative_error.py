"""Relative-error tolerance sweeps (Figure 3 machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.relative_error import (
    PAPER_TOLERANCES,
    fit_reduction_curve,
    mantissa_bits_within,
    surviving_fraction,
)


def test_paper_grid_spans_0p1_to_15_pct():
    assert PAPER_TOLERANCES[0] == 0.001
    assert PAPER_TOLERANCES[-1] == 0.15


def test_surviving_fraction_basic():
    errors = [0.0005, 0.05, 10.0]
    assert surviving_fraction(errors, 0.001) == pytest.approx(2 / 3)
    assert surviving_fraction(errors, 0.1) == pytest.approx(1 / 3)


def test_surviving_fraction_inf_always_survives():
    assert surviving_fraction([np.inf], 0.15) == 1.0


def test_surviving_fraction_validates():
    with pytest.raises(ValueError):
        surviving_fraction([], 0.1)
    with pytest.raises(ValueError):
        surviving_fraction([1.0], -0.1)


def test_reduction_curve_monotone_nondecreasing():
    errors = [0.0005, 0.003, 0.01, 0.05, 0.2, np.inf]
    curve = fit_reduction_curve(errors)
    reductions = [red for _, red in curve]
    assert reductions == sorted(reductions)
    assert all(0.0 <= red <= 100.0 for red in reductions)


def test_reduction_curve_at_zero_tolerance_is_zero():
    curve = fit_reduction_curve([0.5, 1.0], tolerances=[0.0])
    assert curve[0][1] == 0.0


def test_reduction_hits_100_when_all_below():
    curve = fit_reduction_curve([1e-6, 1e-5], tolerances=[0.001])
    assert curve[0][1] == 100.0


def test_mantissa_bits_paper_anchors():
    # Principled bound; the paper quotes 41/49 with a slightly
    # different rounding convention.
    assert mantissa_bits_within(0.001) in (41, 42, 43)
    assert mantissa_bits_within(0.15) in (49, 50)


def test_mantissa_bits_monotone():
    bits = [mantissa_bits_within(t) for t in PAPER_TOLERANCES]
    assert bits == sorted(bits)


def test_mantissa_bits_single_precision():
    assert mantissa_bits_within(0.001, mantissa_bits=23) < 23


def test_mantissa_bits_validates():
    with pytest.raises(ValueError):
        mantissa_bits_within(0.0)
    with pytest.raises(ValueError):
        mantissa_bits_within(1.5)
    with pytest.raises(ValueError):
        mantissa_bits_within(0.1, mantissa_bits=0)


@settings(max_examples=40, deadline=None)
@given(
    errors=st.lists(st.floats(1e-6, 1e3), min_size=1, max_size=30),
    t1=st.floats(1e-4, 0.5),
    t2=st.floats(1e-4, 0.5),
)
def test_surviving_fraction_monotone_in_tolerance(errors, t1, t2):
    lo, hi = sorted((t1, t2))
    assert surviving_fraction(errors, lo) >= surviving_fraction(errors, hi)
