"""Cross-module integration: the full pipelines hang together.

These tests run small but complete pipelines (beam → FIT → tolerance →
mitigation; injection → criticality → plan → coverage; baseline vs
hardened) and assert the *consistency relations* between modules that
no unit test checks: partitions summing to totals, plans covering what
criticality says they cover, hardening never losing to the baseline.
"""

import numpy as np
import pytest

from repro.analysis.criticality import criticality_by_portion, portion_of_record
from repro.analysis.pvf import outcome_shares
from repro.analysis.relative_error import surviving_fraction
from repro.beam.experiment import BeamExperiment
from repro.beam.fit import estimate_fit, fit_by_resource
from repro.carolfi.campaign import CampaignConfig, run_campaign
from repro.faults.outcome import Outcome
from repro.hardening.evaluate import abft_beam_coverage, evaluate_plan
from repro.hardening.hardened import run_hardened_campaign
from repro.hardening.selective import RECOMMENDED_PLANS, recommend_plan


@pytest.fixture(scope="module")
def lud_beam():
    return BeamExperiment("lud", seed=314).run_campaign(250)


@pytest.fixture(scope="module")
def lud_injection():
    return run_campaign(CampaignConfig(benchmark="lud", injections=200, seed=314))


# -- beam pipeline -------------------------------------------------------------


def test_pattern_partition_sums_to_sdc_fit(lud_beam):
    report = estimate_fit(lud_beam)
    partition = sum(e.fit for e in report.sdc_by_pattern.values())
    assert partition == pytest.approx(report.sdc.fit)


def test_resource_partition_sums_to_outcome_fit(lud_beam):
    report = estimate_fit(lud_beam)
    for outcome, total in ((Outcome.SDC, report.sdc.fit), (Outcome.DUE, report.due.fit)):
        attributed = sum(e.fit for e in fit_by_resource(lud_beam, outcome).values())
        assert attributed == pytest.approx(total)


def test_tolerance_zero_keeps_every_sdc(lud_beam):
    errors = [r.sdc_metrics["max_rel_err"] for r in lud_beam.sdc_records()]
    assert surviving_fraction(errors, 0.0) == 1.0


def test_abft_census_consistent_with_patterns(lud_beam):
    census = abft_beam_coverage(lud_beam)
    manual = sum(
        1
        for r in lud_beam.sdc_records()
        if r.sdc_metrics.get("pattern") in ("single", "line", "random")
    )
    assert census.correctable == manual
    assert census.sdc_count == len(lud_beam.sdc_records())


def test_fit_report_event_counts_match_campaign(lud_beam):
    report = estimate_fit(lud_beam)
    assert report.sdc.events == lud_beam.count(Outcome.SDC)
    assert report.due.events == lud_beam.count(Outcome.DUE)


# -- injection pipeline ----------------------------------------------------------


def test_portion_counts_partition_campaign(lud_injection):
    reports = criticality_by_portion(lud_injection.records)
    assert sum(r.injections for r in reports) == len(lud_injection)


def test_recommended_plan_coverage_matches_portion_mass(lud_injection):
    plan = RECOMMENDED_PLANS["lud"]
    coverage = evaluate_plan(lud_injection.records, plan)
    harmful = [r for r in lud_injection.records if r.outcome is not Outcome.MASKED]
    manual_covered = sum(
        1 for r in harmful if plan.technique_for(portion_of_record(r)) is not None
    )
    assert coverage.covered_faults == manual_covered
    assert coverage.harmful_faults == len(harmful)


def test_recommender_covers_the_hottest_portion(lud_injection):
    reports = criticality_by_portion(lud_injection.records)
    plan = recommend_plan("lud", reports, harmful_threshold=0.0)
    # Threshold zero: every observed portion gets protection.
    for report in reports:
        assert plan.technique_for(report.portion) is not None


# -- hardened vs baseline ---------------------------------------------------------


def test_hardening_beats_baseline_on_same_inputs(lud_injection):
    hardened = run_hardened_campaign("lud", injections=200, seed=314)
    baseline = outcome_shares(lud_injection.records)
    before = baseline["sdc"] + baseline["due"]
    after = hardened.residual_harmful()
    assert after < before
    shares = hardened.shares()
    assert shares["detected"] > 0.0
    assert sum(shares.values()) == pytest.approx(1.0)


def test_hardened_and_baseline_share_the_input_dataset(lud_injection):
    # Both supervisors replay the same campaign input stream, so their
    # golden outputs must agree bit for bit.
    from repro.benchmarks.registry import create
    from repro.carolfi.supervisor import Supervisor
    from repro.hardening.hardened import HardenedSupervisor

    plain = Supervisor(create("lud"), seed=314)
    hard = HardenedSupervisor(create("lud"), seed=314)
    assert np.array_equal(plain.golden, hard.golden)
