"""The four CAROL-FI fault models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.models import FaultModel, apply_fault_model
from repro.util.rng import derive_rng


def test_all_models():
    assert [m.value for m in FaultModel.all()] == ["single", "double", "random", "zero"]


def test_single_flips_exactly_one_bit():
    arr = np.zeros(4, dtype=np.int64)
    detail = apply_fault_model(arr, 2, FaultModel.SINGLE, derive_rng(1, "m"))
    assert detail["model"] == "single"
    assert len(detail["bits"]) == 1
    assert bin(int(arr[2]) & (2**63 - 1)).count("1") <= 1
    assert arr[2] != 0


def test_double_flips_two_bits_same_byte():
    arr = np.zeros(4, dtype=np.int64)
    detail = apply_fault_model(arr, 0, FaultModel.DOUBLE, derive_rng(2, "m"))
    bits = detail["bits"]
    assert len(bits) == 2
    assert bits[0] != bits[1]
    # Both flipped bits land within the same byte (paper: the Double
    # model restricts the distance between the flipped bits).
    assert bits[0] // 8 == bits[1] // 8


def test_zero_clears_element():
    arr = np.full(3, 99.5)
    detail = apply_fault_model(arr, 1, FaultModel.ZERO, derive_rng(3, "m"))
    assert arr[1] == 0.0
    assert detail["bits"] is None


def test_random_overwrites_bits():
    arr = np.zeros(3, dtype=np.int64)
    apply_fault_model(arr, 0, FaultModel.RANDOM, derive_rng(4, "m"))
    # 64 random bits are zero with probability 2^-64.
    assert arr[0] != 0


def test_only_target_element_changes():
    for model in FaultModel.all():
        arr = np.arange(8, dtype=np.float64) + 1.0
        before = arr.copy()
        apply_fault_model(arr, 5, model, derive_rng(5, model.value))
        changed = np.flatnonzero(arr.view(np.uint64) != before.view(np.uint64))
        assert changed.tolist() in ([5], []), model


def test_accepts_string_model():
    arr = np.zeros(1, dtype=np.int32)
    detail = apply_fault_model(arr, 0, "zero", derive_rng(6, "m"))
    assert detail["model"] == "zero"


def test_unknown_model_rejected():
    arr = np.zeros(1)
    with pytest.raises(ValueError):
        apply_fault_model(arr, 0, "half", derive_rng(7, "m"))


def test_deterministic_under_same_rng():
    a = np.zeros(1, dtype=np.int64)
    b = np.zeros(1, dtype=np.int64)
    da = apply_fault_model(a, 0, FaultModel.SINGLE, derive_rng(8, "m"))
    db = apply_fault_model(b, 0, FaultModel.SINGLE, derive_rng(8, "m"))
    assert da == db
    assert a[0] == b[0]


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_double_bits_within_word_any_seed(seed):
    arr = np.zeros(1, dtype=np.float32)
    detail = apply_fault_model(arr, 0, FaultModel.DOUBLE, derive_rng(seed, "d"))
    lo, hi = detail["bits"]
    assert 0 <= lo < hi < 32
    assert lo // 8 == hi // 8


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_single_bit_in_range_for_int8(seed):
    arr = np.zeros(2, dtype=np.int8)
    detail = apply_fault_model(arr, 1, FaultModel.SINGLE, derive_rng(seed, "s"))
    assert 0 <= detail["bits"][0] < 8
