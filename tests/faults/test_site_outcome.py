"""Fault sites, outcomes, and record serialisation."""

import pytest

from repro.faults.outcome import DueKind, InjectionRecord, Outcome
from repro.faults.site import FaultSite


def _site() -> FaultSite:
    return FaultSite(
        frame="kernel",
        variable="thread_ctl",
        flat_index=17,
        dtype="int64",
        var_class="control",
        shape=(20, 9),
    )


def test_site_roundtrip():
    site = _site()
    assert FaultSite.from_dict(site.to_dict()) == site


def test_site_default_class():
    site = FaultSite.from_dict(
        {"frame": "main", "variable": "x", "flat_index": 0, "dtype": "float64"}
    )
    assert site.var_class == "data"
    assert site.shape == ()


def test_outcome_enum():
    assert Outcome.all() == (Outcome.MASKED, Outcome.SDC, Outcome.DUE)
    assert Outcome("sdc") is Outcome.SDC


def test_due_kinds():
    assert {k.value for k in DueKind} == {"crash", "timeout", "hang", "oom", "mca"}


def test_sandbox_due_kinds_roundtrip():
    """The sandbox-observed kinds parse back like the classic ones."""
    assert DueKind("hang") is DueKind.HANG
    assert DueKind("oom") is DueKind.OOM


def _record(outcome=Outcome.SDC) -> InjectionRecord:
    return InjectionRecord(
        benchmark="dgemm",
        run_index=3,
        site=_site(),
        fault_model="double",
        bits=(1, 5),
        interrupt_step=4,
        total_steps=22,
        time_window=0,
        num_windows=5,
        outcome=outcome,
        due_kind=None,
        sdc_metrics={"pattern": "line", "max_rel_err": 0.5},
    )


def test_record_roundtrip():
    record = _record()
    again = InjectionRecord.from_dict(record.to_dict())
    assert again == record


def test_record_due_roundtrip():
    record = InjectionRecord(
        benchmark="nw",
        run_index=0,
        site=_site(),
        fault_model="random",
        bits=None,
        interrupt_step=1,
        total_steps=16,
        time_window=0,
        num_windows=4,
        outcome=Outcome.DUE,
        due_kind=DueKind.CRASH,
        due_detail="IndexError: boom",
    )
    again = InjectionRecord.from_dict(record.to_dict())
    assert again.due_kind is DueKind.CRASH
    assert again.bits is None
    assert again.due_detail == "IndexError: boom"


def test_record_dict_is_json_friendly():
    import json

    assert json.loads(json.dumps(_record().to_dict()))["benchmark"] == "dgemm"


def test_record_frozen():
    with pytest.raises(AttributeError):
        _record().outcome = Outcome.MASKED
