"""Convergence monitor: streaming CIs, the converged predicate, drift."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.telemetry.convergence import ConvergenceMonitor, PVF_OUTCOMES
from repro.util.stats import anytime_proportion_ci, two_proportion_z, wilson_ci

OUTCOMES = ("masked", "sdc", "due")


def record(outcome, benchmark="nw", fault_model="single", run_index=0, window=0):
    return {
        "benchmark": benchmark,
        "fault_model": fault_model,
        "outcome": outcome,
        "run_index": run_index,
        "time_window": window,
    }


def feed(monitor, outcomes, shard=None, **kwargs):
    for i, outcome in enumerate(outcomes):
        monitor.observe(record(outcome, run_index=i, **kwargs), shard=shard)


# -- streaming vs batch (property-style) ---------------------------------------


@given(
    st.lists(st.sampled_from(OUTCOMES), min_size=1, max_size=200),
    st.sampled_from(["wilson", "anytime"]),
)
def test_streaming_ci_matches_batch(outcomes, interval):
    """Folding records one at a time gives exactly the batch interval."""
    monitor = ConvergenceMonitor(interval=interval)
    feed(monitor, outcomes)
    batch = {"wilson": wilson_ci, "anytime": anytime_proportion_ci}[interval]
    for outcome in ("sdc", "due"):
        expected = batch(outcomes.count(outcome), len(outcomes), 0.95)
        got = monitor.ci("nw", "single", outcome)
        assert got.value == pytest.approx(expected.value)
        assert got.lower == pytest.approx(expected.lower)
        assert got.upper == pytest.approx(expected.upper)


@given(st.lists(st.sampled_from(OUTCOMES), min_size=1, max_size=120))
def test_half_width_consistent_with_ci(outcomes):
    monitor = ConvergenceMonitor()
    feed(monitor, outcomes)
    est = monitor.ci("nw", "single", "sdc")
    assert monitor.half_width("nw", "single", "sdc") == pytest.approx(
        (est.upper - est.lower) / 2.0
    )


# -- cell bookkeeping ----------------------------------------------------------


def test_counts_and_cells():
    monitor = ConvergenceMonitor()
    feed(monitor, ["masked", "sdc", "masked"], benchmark="nw")
    feed(monitor, ["due"], benchmark="lud")
    assert monitor.cells() == [("lud", "single"), ("nw", "single")]
    assert monitor.counts("nw", "single") == {"masked": 2, "sdc": 1, "due": 0}
    assert monitor.runs == 4


def test_accepts_record_objects():
    class Rec:
        benchmark = "nw"
        fault_model = "single"
        time_window = 2

        class outcome:
            value = "sdc"

    monitor = ConvergenceMonitor()
    monitor.observe(Rec())
    assert monitor.counts("nw", "single")["sdc"] == 1
    assert 2 in monitor.cell("nw", "single").windows


def test_window_pvf_slices():
    monitor = ConvergenceMonitor()
    for window, outcome in ((0, "sdc"), (0, "masked"), (1, "masked"), (1, "masked")):
        monitor.observe(record(outcome, window=window))
    per_window = monitor.window_pvf("nw", "single")
    assert per_window[0].value == pytest.approx(0.5)
    assert per_window[1].value == pytest.approx(0.0)


def test_summary_rows_shape():
    monitor = ConvergenceMonitor()
    feed(monitor, ["masked"] * 5 + ["sdc"] * 3)
    (row,) = monitor.summary_rows()
    assert row[:3] == ["nw", "single", 8]
    assert all("±" in cell for cell in row[3:])


def test_interval_and_confidence_validation():
    with pytest.raises(ValueError):
        ConvergenceMonitor(interval="wald")
    with pytest.raises(ValueError):
        ConvergenceMonitor(confidence=1.0)


# -- convergence predicate -----------------------------------------------------


def test_empty_monitor_never_converged():
    monitor = ConvergenceMonitor()
    assert monitor.max_half_width() == math.inf
    assert not monitor.converged(0.5)


def test_converged_tracks_target():
    monitor = ConvergenceMonitor()
    feed(monitor, ["masked", "sdc"] * 200)
    width = monitor.max_half_width()
    assert monitor.converged(width + 1e-9)
    assert not monitor.converged(width / 2.0)


def test_min_cell_runs_guards_thin_cells():
    monitor = ConvergenceMonitor()
    feed(monitor, ["masked"] * 400, benchmark="nw")
    feed(monitor, ["masked"] * 2, benchmark="lud")
    assert not monitor.converged(0.5, min_cell_runs=10)
    assert monitor.converged(0.5, min_cell_runs=1)


def test_converged_validates_target():
    monitor = ConvergenceMonitor()
    with pytest.raises(ValueError):
        monitor.converged(0.0)


def test_more_runs_never_widen_the_interval():
    monitor = ConvergenceMonitor()
    rng = np.random.default_rng(7)
    widths = []
    for chunk in range(1, 9):
        outcomes = rng.choice(OUTCOMES, size=50, p=[0.6, 0.25, 0.15])
        feed(monitor, list(outcomes))
        widths.append(monitor.max_half_width())
    assert all(b <= a * 1.02 for a, b in zip(widths, widths[1:]))


# -- cross-shard drift ---------------------------------------------------------


def _identical_shard_monitor(seed=11, shards=8, per_shard=60, p_sdc=0.3):
    """Shards drawing from one Bernoulli — the healthy null hypothesis."""
    rng = np.random.default_rng(seed)
    monitor = ConvergenceMonitor()
    for shard in range(shards):
        outcomes = np.where(rng.random(per_shard) < p_sdc, "sdc", "masked")
        feed(monitor, list(outcomes), shard=shard)
    return monitor


def test_drift_false_positive_rate_on_identically_seeded_shards():
    """Identical distributions stay below the family-wise error budget.

    Each monitor is one family of 8 shards x 2 outcomes tested at
    family alpha=0.01, so across 20 deterministic replications the
    expected number of spuriously flagged families is 0.2; allowing one
    keeps the test honest about Bonferroni's guarantee without flaking
    (the seeds are fixed, so the outcome is reproducible either way).
    """
    flagged = sum(
        1 for seed in range(20) if _identical_shard_monitor(seed=seed).drift_flags()
    )
    assert flagged <= 1


def test_drift_flags_contaminated_shard():
    monitor = _identical_shard_monitor()
    # One mis-seeded shard whose SDC rate is wildly off its peers.
    feed(monitor, ["sdc"] * 60, shard=99)
    flags = monitor.drift_flags()
    assert flags, "contaminated shard must be flagged"
    assert {f.shard for f in flags} == {99}
    worst = flags[0]
    assert worst.outcome in PVF_OUTCOMES
    assert worst.shard_rate > worst.rest_rate
    payload = worst.to_dict()
    assert payload["event"] == "drift"
    assert payload["shard"] == 99
    assert payload["p_value"] < payload["alpha_per_test"]


def test_drift_ignores_thin_shards():
    monitor = ConvergenceMonitor()
    feed(monitor, ["masked"] * 100, shard=0)
    feed(monitor, ["sdc"] * 4, shard=1)  # extreme but below min_shard_runs
    assert monitor.drift_flags(min_shard_runs=8) == []


def test_drift_without_shard_attribution_is_empty():
    monitor = ConvergenceMonitor()
    feed(monitor, ["sdc", "masked"] * 50)  # shard=None throughout
    assert monitor.drift_flags() == []


def test_drift_alpha_validation():
    with pytest.raises(ValueError):
        ConvergenceMonitor().drift_flags(alpha=0.0)


def test_two_proportion_z_matches_flag_threshold():
    monitor = _identical_shard_monitor(shards=2, per_shard=100)
    stats = monitor.cell("nw", "single")
    shard0 = stats.shards[0].get("sdc", 0)
    rest = stats.outcomes.get("sdc", 0) - shard0
    z, p = two_proportion_z(shard0, 100, rest, stats.total - 100)
    assert math.isfinite(z) and 0.0 <= p <= 1.0
