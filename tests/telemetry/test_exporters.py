"""Exporters: Prometheus text round-trip, JSONL snapshots, summary table."""

import math

import pytest

from repro.telemetry import Telemetry, TelemetryConfig
from repro.telemetry.exporters import (
    parse_prometheus_samples,
    parse_prometheus_series,
    parse_prometheus_text,
    prometheus_text,
    snapshot_record,
    summary_table,
    write_metrics_file,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.util.jsonlog import load_records_tolerant


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    runs = reg.counter("repro_runs_total", help="Completed runs by outcome.")
    runs.inc(outcome="masked")
    runs.inc(outcome="masked")
    runs.inc(outcome="sdc")
    reg.gauge("repro_shard_runs_done", help="Per-shard progress.").set(6, shard=0)
    reg.histogram("repro_run_duration_seconds", buckets=(0.1, 1.0)).observe(0.05)
    return reg


def test_prometheus_text_shape():
    text = prometheus_text(populated_registry())
    assert "# HELP repro_runs_total Completed runs by outcome." in text
    assert "# TYPE repro_runs_total counter" in text
    assert '\nrepro_runs_total{outcome="masked"} 2\n' in text
    assert "# TYPE repro_run_duration_seconds histogram" in text
    assert 'repro_run_duration_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_run_duration_seconds_count 1" in text


def test_prometheus_round_trip():
    reg = populated_registry()
    parsed = parse_prometheus_text(prometheus_text(reg))
    assert parsed['repro_runs_total{outcome="masked"}'] == 2.0
    assert parsed['repro_runs_total{outcome="sdc"}'] == 1.0
    assert parsed['repro_shard_runs_done{shard="0"}'] == 6.0
    assert parsed['repro_run_duration_seconds_bucket{le="0.1"}'] == 1.0
    assert parsed['repro_run_duration_seconds_bucket{le="+Inf"}'] == 1.0
    assert parsed["repro_run_duration_seconds_sum"] == pytest.approx(0.05)


def test_prometheus_buckets_are_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=(1.0, 2.0))
    for v in (0.5, 1.5, 5.0):
        h.observe(v)
    parsed = parse_prometheus_text(prometheus_text(reg))
    assert parsed['h_bucket{le="1"}'] == 1.0
    assert parsed['h_bucket{le="2"}'] == 2.0
    assert parsed['h_bucket{le="+Inf"}'] == 3.0


def test_parse_rejects_malformed_sample():
    with pytest.raises(ValueError):
        parse_prometheus_text("metric_without_value\n")
    with pytest.raises(ValueError):
        parse_prometheus_text("m not-a-number\n")
    assert parse_prometheus_text("# just a comment\n\n") == {}
    assert parse_prometheus_text('x{le="+Inf"} +Inf\n')['x{le="+Inf"}'] == math.inf


def test_label_values_escaped():
    reg = MetricsRegistry()
    reg.counter("c").inc(detail='say "hi"\nback\\slash')
    text = prometheus_text(reg)
    assert '\\"hi\\"' in text and "\\n" in text and "\\\\slash" in text
    assert len(parse_prometheus_text(text)) == 1


def test_snapshot_record_and_jsonl_append(tmp_path):
    reg = populated_registry()
    record = snapshot_record(reg, campaign="nw")
    assert record["kind"] == "metrics"
    assert record["campaign"] == "nw"
    assert record["t_wall"] > 0 and record["t_mono"] > 0
    path = tmp_path / "metrics.jsonl"
    write_metrics_file(reg, path)
    write_metrics_file(reg, path)  # appends: a time series, not an overwrite
    records, skipped = load_records_tolerant(path)
    assert skipped == 0 and len(records) == 2
    restored = MetricsRegistry()
    restored.merge(records[-1]["metrics"])
    assert restored.counter_values() == reg.counter_values()


def test_write_metrics_file_prom_suffix(tmp_path):
    reg = populated_registry()
    path = write_metrics_file(reg, tmp_path / "deep" / "metrics.prom")
    assert path.exists()
    assert parse_prometheus_text(path.read_text(encoding="utf-8"))


def test_summary_table_lists_every_series():
    table = summary_table(populated_registry())
    assert "repro_runs_total" in table
    assert "outcome=masked" in table
    assert "n=1" in table  # histogram rendered as count + mean
    assert "repro_shard_runs_done" in table
    empty = summary_table(MetricsRegistry())
    assert "(no metrics recorded)" in empty


def test_telemetry_finalize_exports(tmp_path):
    tel = Telemetry(TelemetryConfig(metrics_path=tmp_path / "m.prom"))
    tel.registry.counter("c").inc()
    exported = tel.finalize()
    assert exported is not None
    assert parse_prometheus_text(exported.read_text(encoding="utf-8"))["c"] == 1.0
    disabled = Telemetry(enabled=False)
    assert disabled.finalize() is None


# -- exposition-format escaping (label values, HELP text) -----------------------


NASTY_VALUES = (
    'back\\slash',
    'quo"te',
    "new\nline",
    'all\\of"them\ntogether',
    "trailing\\",
    "",
)


def test_label_value_escaping_round_trips():
    reg = MetricsRegistry()
    counter = reg.counter("c", help="nasty labels")
    for value in NASTY_VALUES:
        counter.inc(path=value)
    samples = parse_prometheus_samples(prometheus_text(reg))
    parsed_values = {dict(labels)["path"] for (name, labels) in samples if name == "c"}
    assert parsed_values == set(NASTY_VALUES)
    assert all(v == 1.0 for v in samples.values())


def test_escaped_text_has_no_raw_newlines_inside_samples():
    reg = MetricsRegistry()
    reg.counter("c").inc(path="a\nb")
    text = prometheus_text(reg)
    sample_lines = [l for l in text.splitlines() if l and not l.startswith("#")]
    assert sample_lines == [r'c{path="a\nb"} 1']


def test_help_text_newline_does_not_corrupt_samples():
    reg = MetricsRegistry()
    reg.counter("c", help="line one\nline two \\ slash").inc()
    text = prometheus_text(reg)
    assert "# HELP c line one\\nline two \\\\ slash" in text
    assert parse_prometheus_text(text)["c"] == 1.0


def test_parse_prometheus_series_plain_and_labeled():
    assert parse_prometheus_series("up") == ("up", {})
    name, labels = parse_prometheus_series('c{a="1",b="x y"}')
    assert name == "c" and labels == {"a": "1", "b": "x y"}
    with pytest.raises(ValueError):
        parse_prometheus_series('c{a="unterminated')
    with pytest.raises(ValueError):
        parse_prometheus_series('c{a=unquoted}')


def test_histogram_always_exports_inf_bucket():
    reg = MetricsRegistry()
    reg.histogram("h", buckets=(0.5, 2.0)).observe(10.0)  # beyond every bound
    parsed = parse_prometheus_text(prometheus_text(reg))
    assert parsed['h_bucket{le="+Inf"}'] == 1.0
    assert parsed['h_bucket{le="2"}'] == 0.0
    assert parsed["h_count"] == 1.0


def test_parse_prometheus_samples_unescapes_while_text_keys_do_not():
    reg = MetricsRegistry()
    reg.counter("c").inc(path='a"b')
    text = prometheus_text(reg)
    assert 'c{path="a\\"b"}' in parse_prometheus_text(text)
    assert (("c", (("path", 'a"b'),))) in parse_prometheus_samples(text)


def test_quantile_from_samples_matches_registry_quantile():
    from repro.telemetry.exporters import quantile_from_samples

    reg = MetricsRegistry()
    h = reg.histogram("rtt", buckets=(0.001, 0.01, 0.1, 1.0))
    for v in (0.002, 0.004, 0.02, 0.05, 0.3):
        h.observe(v, worker="w0")
    h.observe(0.5, worker="w1")
    samples = parse_prometheus_samples(prometheus_text(reg))
    for q in (0.5, 0.9, 0.99):
        assert quantile_from_samples(samples, "rtt", q) == pytest.approx(
            h.quantile(q)
        )
        assert quantile_from_samples(samples, "rtt", q, worker="w0") == pytest.approx(
            h.quantile(q, worker="w0")
        )
    assert quantile_from_samples(samples, "rtt", 0.5, worker="ghost") is None
    assert quantile_from_samples(samples, "absent", 0.5) is None
    with pytest.raises(ValueError):
        quantile_from_samples(samples, "rtt", 2.0)


def test_quantile_from_samples_overflow_clamps_to_finite_bound():
    from repro.telemetry.exporters import quantile_from_samples

    reg = MetricsRegistry()
    reg.histogram("h", buckets=(0.5, 2.0)).observe(50.0)
    samples = parse_prometheus_samples(prometheus_text(reg))
    assert quantile_from_samples(samples, "h", 0.9) == pytest.approx(2.0)
