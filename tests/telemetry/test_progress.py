"""Progress reporter: rendering, rate limiting, noop behaviour."""

import io

import pytest

from repro.telemetry import Telemetry, TelemetryConfig
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.progress import NOOP_REPORTER, ProgressReporter


def populate_campaign(reg: MetricsRegistry) -> None:
    runs = reg.counter("repro_runs_total")
    for _ in range(6):
        runs.inc(outcome="masked")
    runs.inc(outcome="sdc")
    runs.inc(outcome="due")
    reg.counter("repro_failure_events_total").inc(event="retry")
    planned = reg.gauge("repro_shard_runs_planned")
    done = reg.gauge("repro_shard_runs_done")
    for shard, (p, d) in enumerate([(8, 8), (8, 2), (8, 5)]):
        planned.set(p, shard=shard)
        done.set(d, shard=shard)


def campaign_reporter(**kwargs) -> ProgressReporter:
    reg = MetricsRegistry()
    reporter = ProgressReporter(reg, total_runs=24, **kwargs)
    populate_campaign(reg)
    return reporter


def test_render_line_contents():
    line = campaign_reporter(label="nw").render()
    assert line.startswith("[nw] 8/24 runs 33.3%")
    assert "masked 6 sdc 1 due 1" in line
    assert "retries 1 quarantined 0 reaped 0" in line
    # Shard 1 is the least-finished in-flight shard (2/8 < 5/8; 8/8 done).
    assert "slowest shard 1 (2/8)" in line
    assert "eta" in line


def test_render_includes_replays():
    reg = MetricsRegistry()
    reporter = ProgressReporter(reg, total_runs=24)
    reg.counter("repro_runs_replayed_total").inc(12)
    line = reporter.render()
    assert "12/24 runs 50.0%" in line
    assert "replayed 12" in line


def test_reporter_baselines_preexisting_counts():
    """A registry shared across campaigns: earlier totals don't count."""
    reg = MetricsRegistry()
    populate_campaign(reg)  # a previous campaign's worth of counts
    reg.counter("repro_runs_replayed_total").inc(12)
    reporter = ProgressReporter(reg, total_runs=24, label="second")
    line = reporter.render()
    assert line.startswith("[second] 0/24 runs 0.0%")
    assert "masked 0 sdc 0 due 0" in line
    assert "retries 0" in line and "replayed" not in line
    reg.counter("repro_runs_total").inc(outcome="masked")
    assert "masked 1" in reporter.render()


def test_tick_is_rate_limited():
    stream = io.StringIO()
    reporter = campaign_reporter(interval_s=3600.0, stream=stream)
    assert reporter.tick() is None  # inside the interval: suppressed
    line = reporter.tick(force=True)
    assert line is not None
    assert stream.getvalue() == line + "\n"
    assert reporter.tick() is None


def test_validation():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        ProgressReporter(reg, total_runs=0)
    with pytest.raises(ValueError):
        ProgressReporter(reg, total_runs=10, interval_s=0.0)


def test_noop_reporter():
    assert NOOP_REPORTER.tick() is None
    assert NOOP_REPORTER.tick(force=True) is None
    assert NOOP_REPORTER.render() == ""


def test_telemetry_reporter_selection():
    assert Telemetry(TelemetryConfig()).progress_reporter(10) is NOOP_REPORTER
    enabled = Telemetry(TelemetryConfig(progress_interval_s=5.0))
    reporter = enabled.progress_reporter(10, label="dgemm")
    assert isinstance(reporter, ProgressReporter)
    assert reporter.label == "dgemm"
    assert reporter.interval_s == 5.0
    disabled = Telemetry(TelemetryConfig(progress_interval_s=5.0), enabled=False)
    assert disabled.progress_reporter(10) is NOOP_REPORTER


# -- ETA discipline (resumed campaigns, shared registries) ----------------------


def test_eta_warmup_suppresses_projection():
    """A fresh reporter refuses to extrapolate a tiny elapsed window."""
    reporter = campaign_reporter()
    reporter.eta_warmup_s = 3600.0  # freshly constructed: elapsed << warm-up
    assert "eta ?" in reporter.render()


def test_eta_finite_after_warmup():
    reporter = campaign_reporter()
    reporter.eta_warmup_s = 0.0
    line = reporter.render()
    assert "eta ?" not in line
    assert "eta " in line and "eta -" not in line


def test_eta_zero_when_complete():
    reg = MetricsRegistry()
    reporter = ProgressReporter(reg, total_runs=4)
    reporter.eta_warmup_s = 0.0
    reg.counter("repro_runs_total").inc(4, outcome="masked")
    assert "4/4 runs 100.0%" in reporter.render()
    assert "eta 0s" in reporter.render()


def test_eta_unknown_when_only_replays():
    """A resumed campaign's replay burst is not a rate."""
    reg = MetricsRegistry()
    reporter = ProgressReporter(reg, total_runs=24)
    reporter.eta_warmup_s = 0.0
    reg.counter("repro_runs_replayed_total").inc(12)
    line = reporter.render()
    assert "12/24" in line
    assert "eta ?" in line  # zero live runs: no basis for an ETA


def test_negative_counter_deltas_clamped():
    """A doctored baseline must never render negative progress."""
    reporter = campaign_reporter()
    reporter._base[("repro_runs_total", "outcome")]["masked"] = 1e6
    reporter._base_replayed = 1e6
    line = reporter.render()
    assert "masked 0" in line
    assert "-" not in line.split("|")[0]  # done/percent never negative


def test_shared_registry_baseline_isolates_campaigns():
    """A second campaign's reporter starts from zero on a shared registry."""
    reg = MetricsRegistry()
    reg.counter("repro_runs_total").inc(20, outcome="sdc")
    reg.counter("repro_runs_replayed_total").inc(4)
    reporter = ProgressReporter(reg, total_runs=24, label="second")
    assert reporter.render().startswith("[second] 0/24 runs 0.0%")
