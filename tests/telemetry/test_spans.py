"""Spans: nesting, error capture, cross-process context propagation."""

import os

import pytest

from repro.telemetry import ShardTelemetry, WorkerTelemetry
from repro.telemetry.spans import NOOP_TRACER, SpanContext, Tracer


def test_span_records_timing_and_attrs():
    out = []
    tracer = Tracer(out.append, trace_id="t1")
    with tracer.span("golden_run", benchmark="nw") as span:
        span.set_attr("steps", 4)
    (record,) = out
    assert record["kind"] == "span"
    assert record["trace"] == "t1"
    assert record["name"] == "golden_run"
    assert record["parent"] is None
    assert record["pid"] == os.getpid()
    assert record["dur_s"] >= 0.0
    assert record["t_wall"] > 0 and record["t_mono"] > 0
    assert record["attrs"] == {"benchmark": "nw", "steps": 4}
    assert "error" not in record


def test_spans_nest_and_emit_inner_first():
    out = []
    tracer = Tracer(out.append)
    with tracer.span("campaign") as outer:
        with tracer.span("shard") as inner:
            assert inner.parent_id == outer.span_id
    assert [r["name"] for r in out] == ["shard", "campaign"]
    shard, campaign = out
    assert shard["parent"] == campaign["span"]
    assert shard["trace"] == campaign["trace"]


def test_span_ids_unique_without_randomness():
    tracer = Tracer(lambda r: None)
    ids = set()
    for _ in range(50):
        with tracer.span("x") as span:
            ids.add(span.span_id)
    assert len(ids) == 50
    assert all(i.startswith(f"{os.getpid():x}.") for i in ids)


def test_exception_marks_span_and_propagates():
    out = []
    tracer = Tracer(out.append)
    with pytest.raises(ValueError):
        with tracer.span("corrupt"):
            raise ValueError("boom")
    assert out[0]["error"] == "ValueError"


def test_exception_unwinds_leaked_inner_spans():
    out = []
    tracer = Tracer(out.append)
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            tracer.span("leaked")  # never exited explicitly
            raise RuntimeError
    # The outer exit popped the leaked inner span; the stack is clean.
    assert tracer.current_context() is None
    assert [r["name"] for r in out] == ["outer"]


def test_cross_process_context_continues_the_trace():
    parent_out = []
    parent = Tracer(parent_out.append, trace_id="campaign-1")
    with parent.span("campaign") as campaign_span:
        ctx = parent.current_context()
        assert ctx == SpanContext("campaign-1", campaign_span.span_id)
        # "worker side": a fresh tracer rebuilt from the pickled context.
        child_out = []
        child = Tracer(child_out.append, parent=ctx)
        with child.span("shard"):
            pass
    assert child_out[0]["trace"] == "campaign-1"
    assert child_out[0]["parent"] == campaign_span.span_id


def test_current_context_outside_spans():
    assert Tracer(lambda r: None).current_context() is None
    rooted = Tracer(lambda r: None, parent=SpanContext("t", "s"))
    assert rooted.current_context() == SpanContext("t", "s")


def test_noop_tracer_costs_nothing_and_yields_nothing():
    assert not NOOP_TRACER.enabled
    with NOOP_TRACER.span("anything", attr=1) as span:
        span.set_attr("k", "v")
    assert NOOP_TRACER.current_context() is None


def test_worker_telemetry_drain_keeps_sink_attached():
    """Regression: draining must not detach the tracer from its buffer."""
    wtel = WorkerTelemetry(ShardTelemetry(metrics=True, trace=True))
    with wtel.tracer.span("run"):
        pass
    _, first = wtel.drain()
    assert [r["name"] for r in first] == ["run"]
    with wtel.tracer.span("run"):
        pass
    _, second = wtel.drain()
    assert [r["name"] for r in second] == ["run"]


def test_worker_telemetry_disabled_sides():
    wtel = WorkerTelemetry(ShardTelemetry())
    assert not wtel.registry.enabled
    assert wtel.tracer is NOOP_TRACER
    assert wtel.drain() == ({}, [])
    assert not ShardTelemetry().enabled
    assert ShardTelemetry(metrics=True).enabled
