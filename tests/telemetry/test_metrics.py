"""Metrics registry: instruments, wire-format merging, null registry."""

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)


def test_counter_accumulates_by_label():
    reg = MetricsRegistry()
    runs = reg.counter("repro_runs_total")
    runs.inc(outcome="masked")
    runs.inc(outcome="masked")
    runs.inc(outcome="sdc")
    runs.inc(3.0, outcome="due")
    assert runs.value(outcome="masked") == 2.0
    assert runs.value(outcome="sdc") == 1.0
    assert runs.value(outcome="due") == 3.0
    assert runs.value(outcome="never-seen") == 0.0
    assert runs.total() == 6.0


def test_counter_rejects_negative_increment():
    with pytest.raises(ValueError):
        MetricsRegistry().counter("c").inc(-1.0)


def test_registry_get_or_create_is_idempotent_and_type_checked():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_gauge_last_write_wins():
    reg = MetricsRegistry()
    g = reg.gauge("repro_shard_runs_done")
    g.set(3, shard=0)
    g.set(5, shard=0)
    g.set(2, shard=1)
    assert g.value(shard=0) == 5.0
    assert g.value(shard=1) == 2.0


def test_histogram_buckets_sum_count():
    reg = MetricsRegistry()
    h = reg.histogram("d", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count() == 5
    assert h.sum() == pytest.approx(56.05)
    wire = h.to_wire()
    ((_, slot),) = wire["values"]
    assert slot["buckets"] == [1, 2, 1, 1]  # last slot is +Inf


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram("h", buckets=())
    with pytest.raises(ValueError):
        Histogram("h", buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", buckets=(1.0, 1.0))


def test_drain_delta_merges_exactly_once():
    worker, engine = MetricsRegistry(), MetricsRegistry()
    c = worker.counter("repro_runs_total", help="runs")
    c.inc(outcome="masked")
    first = worker.drain_delta()
    engine.merge(first)
    # Nothing new: the delta buffer was cleared, nothing to ship.
    assert worker.drain_delta() == {}
    c.inc(outcome="masked")
    engine.merge(worker.drain_delta())
    assert engine.counter("repro_runs_total").value(outcome="masked") == 2.0
    # Totals on the worker side are untouched by draining.
    assert c.value(outcome="masked") == 2.0


def test_merge_matches_serial_totals_across_workers():
    """N worker registries merged == one registry fed the same stream."""
    serial = MetricsRegistry()
    engine = MetricsRegistry()
    workers = [MetricsRegistry() for _ in range(3)]
    observations = [(i, 0.01 * (i + 1)) for i in range(12)]
    for i, duration in observations:
        serial.counter("runs").inc(outcome="masked" if i % 2 else "sdc")
        serial.histogram("dur").observe(duration)
        w = workers[i % 3]
        w.counter("runs").inc(outcome="masked" if i % 2 else "sdc")
        w.histogram("dur").observe(duration)
    for w in workers:
        engine.merge(w.drain_delta())
    assert engine.counter_values() == serial.counter_values()
    assert engine.histogram("dur").count() == serial.histogram("dur").count()
    assert engine.histogram("dur").sum() == pytest.approx(serial.histogram("dur").sum())


def test_merge_gauge_keeps_latest_value():
    engine = MetricsRegistry()
    w = MetricsRegistry()
    w.gauge("done").set(3, shard=0)
    engine.merge(w.drain_delta())
    w.gauge("done").set(6, shard=0)
    engine.merge(w.drain_delta())
    assert engine.gauge("done").value(shard=0) == 6.0


def test_merge_histogram_bucket_mismatch_is_loud():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
    b.histogram("h", buckets=(1.0, 2.0, 3.0))
    with pytest.raises(ValueError):
        b.merge(a.snapshot())


def test_merge_rejects_unknown_kind():
    with pytest.raises(ValueError):
        MetricsRegistry().merge({"x": {"kind": "summary", "values": []}})


def test_snapshot_round_trips_through_json():
    import json

    reg = MetricsRegistry()
    reg.counter("c", help="a counter").inc(outcome="sdc")
    reg.gauge("g").set(7, shard=2)
    reg.histogram("h").observe(0.2)
    restored = MetricsRegistry()
    restored.merge(json.loads(json.dumps(reg.snapshot())))
    assert restored.counter_values() == reg.counter_values()
    assert restored.gauge("g").value(shard=2) == 7.0
    assert restored.histogram("h").count() == 1


def test_null_registry_is_inert():
    assert not NULL_REGISTRY.enabled
    c = NULL_REGISTRY.counter("anything")
    c.inc(outcome="sdc")
    assert c.value(outcome="sdc") == 0.0
    assert list(c.items()) == []
    NULL_REGISTRY.gauge("g").set(5)
    NULL_REGISTRY.histogram("h").observe(1.0)
    NULL_REGISTRY.merge({"x": {"kind": "counter", "values": []}})
    assert NULL_REGISTRY.counter_values() == {}


def test_default_buckets_cover_run_and_shard_scales():
    assert DEFAULT_BUCKETS[0] <= 0.001
    assert DEFAULT_BUCKETS[-1] >= 600.0
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


def test_counter_values_shape():
    reg = MetricsRegistry()
    reg.counter("plain").inc()
    reg.counter("labelled").inc(kind="crash", shard="0")
    assert reg.counter_values() == {
        "plain": {"": 1.0},
        "labelled": {"kind=crash,shard=0": 1.0},
    }
    assert isinstance(reg.counter("plain"), Counter)


def test_histogram_quantile_interpolates_within_bucket():
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 1.5, 3.0):  # buckets: [1, 2, 1, +Inf 0]
        h.observe(v)
    # Median rank 2.0 is halfway through the (1, 2] bucket.
    assert h.quantile(0.5) == pytest.approx(1.5)
    assert h.quantile(0.75) == pytest.approx(2.0)
    assert h.quantile(1.0) == pytest.approx(4.0)
    assert h.quantile(0.0) == pytest.approx(0.0)


def test_histogram_quantile_labels_and_fleet_aggregate():
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=(1.0, 10.0))
    for _ in range(10):
        h.observe(0.5, worker="fast")
    for _ in range(10):
        h.observe(5.0, worker="slow")
    assert h.quantile(0.5, worker="fast") <= 1.0
    assert h.quantile(0.5, worker="slow") > 1.0
    # Without labels the fleet view aggregates every series.
    fleet = h.quantile(0.95)
    assert 1.0 < fleet <= 10.0
    assert h.quantile(0.5, worker="nobody") is None


def test_histogram_quantile_overflow_clamps_and_empty_is_none():
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=(0.5, 2.0))
    assert h.quantile(0.9) is None
    h.observe(100.0)  # +Inf overflow bucket
    assert h.quantile(0.9) == pytest.approx(2.0)  # clamps to largest bound
    with pytest.raises(ValueError):
        h.quantile(1.5)
    assert NULL_REGISTRY.histogram("h").quantile(0.9) is None
