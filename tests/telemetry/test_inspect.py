"""repro-inspect: artifact loading, report sections, strict mode, HTML."""

import io
import json

import pytest

from repro.telemetry.inspect import (
    build_monitor,
    convergence_curves,
    load_campaign,
    main,
    render_html,
    render_text,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.exporters import prometheus_text

OUTCOME_CYCLE = ("masked", "masked", "sdc", "due")


def make_record(run_index, benchmark="nw", fault_model="single"):
    return {
        "run_index": run_index,
        "benchmark": benchmark,
        "fault_model": fault_model,
        "outcome": OUTCOME_CYCLE[run_index % len(OUTCOME_CYCLE)],
        "time_window": run_index % 4,
    }


def write_campaign_dir(root, runs=32, shard_size=8, metrics=True, trace=True):
    """A synthetic checkpoint directory in the engine's artifact dialect."""
    root.mkdir(parents=True, exist_ok=True)
    records = [make_record(i) for i in range(runs)]
    with (root / "campaign.jsonl").open("w") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
    for shard, start in enumerate(range(0, runs, shard_size)):
        chunk = records[start : start + shard_size]
        with (root / f"shard-{shard:05d}.jsonl").open("w") as fh:
            fh.write(json.dumps({"kind": "header", "shard": shard}) + "\n")
            for record in chunk:
                fh.write(json.dumps({"kind": "record", "data": record}) + "\n")
            fh.write(json.dumps({"kind": "done", "count": len(chunk)}) + "\n")
    if trace:
        with (root / "trace.jsonl").open("w") as fh:
            for shard in range(runs // shard_size):
                fh.write(
                    json.dumps(
                        {
                            "kind": "span",
                            "name": "shard",
                            "dur_s": 1.0 + shard,
                            "attrs": {
                                "shard": shard,
                                "start": shard * shard_size,
                                "stop": (shard + 1) * shard_size,
                            },
                        }
                    )
                    + "\n"
                )
            fh.write(json.dumps({"kind": "span", "name": "campaign", "dur_s": 10.0}) + "\n")
    (root / "failures.jsonl").touch()
    if metrics:
        registry = MetricsRegistry()
        counter = registry.counter("repro_records_total")
        for record in records:
            counter.inc(outcome=record["outcome"])
        (root / "metrics.prom").write_text(prometheus_text(registry))
    return records


# -- loading -------------------------------------------------------------------


def test_load_campaign_joins_all_artifacts(tmp_path):
    records = write_campaign_dir(tmp_path / "ck")
    data = load_campaign(tmp_path / "ck")
    assert [r["run_index"] for r in data.records] == [r["run_index"] for r in records]
    assert data.shard_of[0] == 0 and data.shard_of[31] == 3
    assert len(data.spans) == 5
    assert data.metrics is not None
    assert data.corrupt_total == 0


def test_load_campaign_reconstructs_from_shards_alone(tmp_path):
    write_campaign_dir(tmp_path / "ck")
    (tmp_path / "ck" / "campaign.jsonl").unlink()
    data = load_campaign(tmp_path / "ck")
    assert [r["run_index"] for r in data.records] == list(range(32))


def test_load_campaign_accepts_bare_log_file(tmp_path):
    write_campaign_dir(tmp_path / "ck")
    data = load_campaign(tmp_path / "ck" / "campaign.jsonl")
    assert len(data.records) == 32


def test_corrupt_lines_surfaced_and_counted(tmp_path):
    write_campaign_dir(tmp_path / "ck")
    with (tmp_path / "ck" / "campaign.jsonl").open("a") as fh:
        fh.write("{not json\n")
        fh.write('{"also": "broken"\n')
    registry = MetricsRegistry()
    data = load_campaign(tmp_path / "ck", registry=registry)
    assert data.corrupt == {"campaign.jsonl": 2}
    counter = registry.counter("repro_corrupt_lines_total")
    samples = {labels.get("file"): value for labels, value in counter.items()}
    assert samples == {"campaign.jsonl": 2.0}


def test_jsonl_metrics_snapshot_supported(tmp_path):
    records = write_campaign_dir(tmp_path / "ck", metrics=False)
    registry = MetricsRegistry()
    counter = registry.counter("repro_records_total")
    for record in records:
        counter.inc(outcome=record["outcome"])
    snapshot = {"kind": "metrics", "metrics": registry.snapshot()}
    (tmp_path / "ck" / "metrics.json").write_text(json.dumps(snapshot) + "\n")
    data = load_campaign(tmp_path / "ck")
    by_outcome = data.metric_by_label("repro_records_total", "outcome")
    assert by_outcome == {"masked": 16.0, "sdc": 8.0, "due": 8.0}


# -- analysis helpers ----------------------------------------------------------


def test_build_monitor_recovers_shard_structure(tmp_path):
    write_campaign_dir(tmp_path / "ck")
    monitor = build_monitor(load_campaign(tmp_path / "ck"))
    assert monitor.cells() == [("nw", "single")]
    assert set(monitor.cell("nw", "single").shard_totals) == {0, 1, 2, 3}


def test_convergence_curves_monotone_tail():
    records = [make_record(i) for i in range(64)]
    curves = convergence_curves(records)
    xs, ys = curves[("nw", "single")]
    assert xs[-1] == 64
    assert ys[-1] < ys[0]
    assert convergence_curves([]) == {}


# -- text + html reports -------------------------------------------------------


def test_render_text_sections(tmp_path):
    write_campaign_dir(tmp_path / "ck")
    data = load_campaign(tmp_path / "ck")
    text, problems = render_text([data])
    assert problems == []
    for needle in (
        "overview",
        "outcome matrix",
        "convergence",
        "span waterfall",
        "slowest shards",
        "cross-shard drift: none detected",
        "metrics reconciliation",
    ):
        assert needle in text, needle


def test_render_text_flags_reconciliation_mismatch(tmp_path):
    write_campaign_dir(tmp_path / "ck")
    registry = MetricsRegistry()
    registry.counter("repro_records_total").inc(1000, outcome="sdc")
    (tmp_path / "ck" / "metrics.prom").write_text(prometheus_text(registry))
    text, problems = render_text([load_campaign(tmp_path / "ck")])
    assert any("reconcile" in p for p in problems)
    assert "no" in text.splitlines()[-2] or "no" in text


def test_render_html_is_self_contained(tmp_path):
    write_campaign_dir(tmp_path / "ck")
    html_text = render_html([load_campaign(tmp_path / "ck")], target_ci=0.05)
    assert html_text.startswith("<!doctype html>")
    assert "<svg" in html_text and "polyline" in html_text
    assert "prefers-color-scheme" in html_text
    assert "http://" not in html_text and "https://" not in html_text
    assert "target 0.05" in html_text


def test_render_html_escapes_names(tmp_path):
    root = tmp_path / "ck"
    write_campaign_dir(root, runs=8, shard_size=8)
    rows = [json.loads(line) for line in (root / "campaign.jsonl").open()]
    for row in rows:
        row["benchmark"] = "<script>alert(1)</script>"
    with (root / "campaign.jsonl").open("w") as fh:
        for row in rows:
            fh.write(json.dumps(row) + "\n")
    html_text = render_html([load_campaign(root / "campaign.jsonl")])
    assert "<script>alert" not in html_text
    assert "&lt;script&gt;" in html_text


# -- CLI -----------------------------------------------------------------------


def test_main_writes_report_and_html(tmp_path, capsys):
    write_campaign_dir(tmp_path / "ck")
    html_path = tmp_path / "report.html"
    out = io.StringIO()
    code = main([str(tmp_path / "ck"), "--html", str(html_path), "--strict"], stream=out)
    assert code == 0
    assert "outcome matrix" in out.getvalue()
    assert html_path.exists() and "<svg" in html_path.read_text()


def test_main_strict_fails_on_mismatch(tmp_path):
    write_campaign_dir(tmp_path / "ck")
    registry = MetricsRegistry()
    registry.counter("repro_records_total").inc(7, outcome="masked")
    (tmp_path / "ck" / "metrics.prom").write_text(prometheus_text(registry))
    assert main([str(tmp_path / "ck")], stream=io.StringIO()) == 0
    assert main([str(tmp_path / "ck"), "--strict"], stream=io.StringIO()) == 1


def test_main_diff_mode(tmp_path):
    write_campaign_dir(tmp_path / "a")
    write_campaign_dir(tmp_path / "b")
    out = io.StringIO()
    code = main([str(tmp_path / "a"), str(tmp_path / "b"), "--diff"], stream=out)
    assert code == 0
    assert "campaign diff" in out.getvalue()
    with pytest.raises(SystemExit):
        main([str(tmp_path / "a"), "--diff"], stream=io.StringIO())


def test_main_rejects_empty_campaign(tmp_path):
    (tmp_path / "empty").mkdir()
    assert main([str(tmp_path / "empty")], stream=io.StringIO()) == 2


def test_main_anytime_interval(tmp_path):
    write_campaign_dir(tmp_path / "ck")
    out = io.StringIO()
    assert main([str(tmp_path / "ck"), "--interval", "anytime"], stream=out) == 0
    assert "anytime" in out.getvalue()
