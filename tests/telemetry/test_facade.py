"""Ambient telemetry: activate/deactivate scoping and the Telemetry bundle."""

from repro.telemetry import (
    DISABLED,
    NOOP_TRACER,
    NULL_REGISTRY,
    Telemetry,
    TelemetryConfig,
    activate,
    current_registry,
    current_tracer,
    deactivate,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Tracer
from repro.util.jsonlog import load_records_tolerant


def test_ambient_defaults_are_disabled():
    assert current_registry() is NULL_REGISTRY
    assert current_tracer() is NOOP_TRACER


def test_activate_scopes_and_restores():
    reg, tracer = MetricsRegistry(), Tracer(lambda r: None)
    with activate(reg, tracer):
        assert current_registry() is reg
        assert current_tracer() is tracer
        inner = MetricsRegistry()
        with activate(inner, NOOP_TRACER):
            assert current_registry() is inner
        assert current_registry() is reg
    assert current_registry() is NULL_REGISTRY


def test_activate_restores_on_exception():
    reg = MetricsRegistry()
    try:
        with activate(reg, NOOP_TRACER):
            raise RuntimeError
    except RuntimeError:
        pass
    assert current_registry() is NULL_REGISTRY


def test_deactivate_hard_resets_inside_scope():
    """Sandbox grandchildren kill inherited telemetry without a restore."""
    reg = MetricsRegistry()
    with activate(reg, NOOP_TRACER):
        deactivate()
        assert current_registry() is NULL_REGISTRY
    # The outer scope's exit restores the pre-activate state regardless.
    assert current_registry() is NULL_REGISTRY


def test_disabled_bundle_is_zero_cost():
    assert not DISABLED.enabled
    assert DISABLED.registry is NULL_REGISTRY
    assert DISABLED.tracer is NOOP_TRACER
    assert not DISABLED.tracing
    assert not DISABLED.shard_telemetry().enabled
    with DISABLED.activate():
        assert current_registry() is NULL_REGISTRY


def test_bundle_metrics_off_trace_on(tmp_path):
    tel = Telemetry(TelemetryConfig(metrics=False, trace_path=tmp_path / "t.jsonl"))
    assert tel.registry is NULL_REGISTRY
    assert tel.tracing
    shard = tel.shard_telemetry()
    assert shard.trace and not shard.metrics
    with tel.tracer.span("phase"):
        pass
    tel.finalize()
    records, skipped = load_records_tolerant(tmp_path / "t.jsonl")
    assert skipped == 0 and [r["name"] for r in records] == ["phase"]


def test_bundle_context_manager_finalizes(tmp_path):
    path = tmp_path / "m.prom"
    with Telemetry(TelemetryConfig(metrics_path=path)) as tel:
        tel.registry.counter("c").inc()
    assert path.exists()


def test_shard_telemetry_carries_span_context(tmp_path):
    tel = Telemetry(TelemetryConfig(trace_path=tmp_path / "t.jsonl"))
    with tel.tracer.span("campaign") as span:
        shard = tel.shard_telemetry()
        assert shard.context is not None
        assert shard.context.trace_id == tel.tracer.trace_id
        assert shard.context.span_id == span.span_id
    tel.finalize()
