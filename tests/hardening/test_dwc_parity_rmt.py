"""Duplication-with-comparison, parity, redundant execution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks.registry import create
from repro.hardening.dwc import DuplicatedVariable, DwcMismatch
from repro.hardening.parity import (
    ParityMismatch,
    ParityProtected,
    detection_probability,
    word_parity,
)
from repro.hardening.rmt import redundant_run
from repro.util.bits import flip_bit_inplace
from repro.util.rng import derive_rng

# -- DWC ----------------------------------------------------------------------


def test_dwc_clean_read():
    var = DuplicatedVariable(np.array([1, 2, 3], dtype=np.int64))
    assert var.check()
    np.testing.assert_array_equal(var.read(), [1, 2, 3])


def test_dwc_detects_primary_corruption():
    var = DuplicatedVariable(np.array([1, 2, 3], dtype=np.int64))
    flip_bit_inplace(var.primary, 1, 5)
    assert not var.check()
    with pytest.raises(DwcMismatch):
        var.read()


def test_dwc_detects_shadow_corruption():
    var = DuplicatedVariable(np.array([1.5, 2.5]))
    flip_bit_inplace(var.shadow, 0, 3)
    with pytest.raises(DwcMismatch):
        var.read()


def test_dwc_write_through():
    var = DuplicatedVariable(np.zeros(3))
    var.write(7.0)
    assert var.check()
    assert (var.read() == 7.0).all()


def test_dwc_scrub_resyncs():
    var = DuplicatedVariable(np.zeros(2, dtype=np.int32))
    var.shadow[0] = 9
    var.scrub()
    assert var.check()


def test_dwc_overhead_equals_copy_size():
    var = DuplicatedVariable(np.zeros(10, dtype=np.float32))
    assert var.overhead_bytes == 40


def test_dwc_scalar_0d():
    var = DuplicatedVariable(np.array(5, dtype=np.int64))
    assert var.check()
    flip_bit_inplace(var.primary.reshape(()).base if False else var.primary, 0, 0)
    assert not var.check()


def test_dwc_rejects_object_arrays():
    with pytest.raises(TypeError):
        DuplicatedVariable(np.array([object()]))


# -- Parity -------------------------------------------------------------------


def test_word_parity_known_values():
    arr = np.array([0b0, 0b1, 0b11, 0b111], dtype=np.int64)
    np.testing.assert_array_equal(word_parity(arr), [0, 1, 0, 1])


def test_parity_clean():
    protected = ParityProtected(np.arange(10, dtype=np.int32))
    assert protected.check()
    protected.verify()


def test_parity_detects_single_flip():
    protected = ParityProtected(np.arange(10, dtype=np.int32))
    flip_bit_inplace(protected.data, 4, 7)
    assert protected.mismatches().tolist() == [4]
    with pytest.raises(ParityMismatch):
        protected.verify()


def test_parity_misses_double_flip():
    protected = ParityProtected(np.arange(10, dtype=np.int32))
    flip_bit_inplace(protected.data, 4, 7)
    flip_bit_inplace(protected.data, 4, 2)
    assert protected.check()  # even multiplicity escapes parity


def test_parity_refresh_after_legit_write():
    protected = ParityProtected(np.arange(4, dtype=np.int64))
    protected.data[2] = 999
    assert not protected.check()
    protected.refresh()
    assert protected.check()


def test_parity_overhead_one_bit_per_word():
    protected = ParityProtected(np.zeros(64, dtype=np.float32))
    assert protected.overhead_bits == 64


def test_parity_detection_probability():
    assert detection_probability(1) == 1.0
    assert detection_probability(2) == 0.0
    assert detection_probability(3) == 1.0
    with pytest.raises(ValueError):
        detection_probability(0)


@settings(max_examples=40, deadline=None)
@given(bits=st.lists(st.integers(0, 31), min_size=1, max_size=6, unique=True))
def test_parity_catches_exactly_odd_multiplicities(bits):
    protected = ParityProtected(np.array([12345], dtype=np.int32))
    for bit in bits:
        flip_bit_inplace(protected.data, 0, bit)
    assert protected.check() == (len(bits) % 2 == 0)


# -- RMT ----------------------------------------------------------------------


def test_rmt_agrees_on_clean_runs():
    bench = create("lud", n=16, block=4)

    def make_state():
        return bench.make_state(derive_rng(3, "rmt"))

    result = redundant_run(bench, make_state)
    assert result.agree
    assert result.time_overhead_factor == 2.0


def test_rmt_detects_divergent_copy():
    bench = create("lud", n=16, block=4)
    calls = {"n": 0}

    def make_state():
        state = bench.make_state(derive_rng(3, "rmt"))
        calls["n"] += 1
        if calls["n"] == 2:
            state.matrix[5, 5] += 1.0  # fault in the second replica
        return state

    result = redundant_run(bench, make_state)
    assert not result.agree
