"""ABFT checksum matrix multiplication."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardening.abft import AbftOutcome, abft_check, abft_checksums, abft_matmul
from repro.util.rng import derive_rng


def _protected(n=12, seed=5):
    rng = derive_rng(seed, "abft")
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    return abft_matmul(a, b)


def test_checksums_match_true_product():
    c, row_check, col_check = _protected()
    np.testing.assert_allclose(c.sum(axis=1), row_check, atol=1e-9)
    np.testing.assert_allclose(c.sum(axis=0), col_check, atol=1e-9)


def test_clean_matrix_passes():
    c, rs, cs = _protected()
    result = abft_check(c, rs, cs)
    assert result.outcome is AbftOutcome.CLEAN
    assert result.corrections == 0


def test_single_error_corrected():
    c, rs, cs = _protected()
    c[3, 7] += 2.5
    result = abft_check(c, rs, cs)
    assert result.outcome is AbftOutcome.CORRECTED
    assert result.corrections == 1
    np.testing.assert_allclose(result.matrix.sum(axis=1), rs, atol=1e-8)


def test_row_line_error_corrected():
    c, rs, cs = _protected()
    c[4, 2:9] += np.arange(7) + 1.0
    result = abft_check(c, rs, cs)
    assert result.outcome is AbftOutcome.CORRECTED
    assert result.corrections == 7


def test_column_line_error_corrected():
    c, rs, cs = _protected()
    c[1:6, 9] -= 3.0
    result = abft_check(c, rs, cs)
    assert result.outcome is AbftOutcome.CORRECTED
    assert result.corrections == 5


def test_scattered_random_errors_corrected():
    c, rs, cs = _protected()
    c[1, 2] += 1.0
    c[5, 8] += 2.0
    c[9, 0] -= 4.0  # distinct rows, distinct columns, distinct deltas
    result = abft_check(c, rs, cs)
    assert result.outcome is AbftOutcome.CORRECTED
    assert result.corrections == 3


def test_square_error_detected_not_corrected():
    c, rs, cs = _protected()
    c[2:5, 2:5] += 1.0  # ambiguous block
    result = abft_check(c, rs, cs)
    assert result.outcome is AbftOutcome.DETECTED


def test_equal_delta_pair_is_ambiguous():
    c, rs, cs = _protected()
    c[1, 2] += 1.0
    c[5, 8] += 1.0  # same delta in two rows: match is ambiguous
    result = abft_check(c, rs, cs)
    assert result.outcome is AbftOutcome.DETECTED


def test_nan_corruption_detected():
    c, rs, cs = _protected()
    c[6, 6] = np.nan
    result = abft_check(c, rs, cs)
    assert result.outcome in (AbftOutcome.DETECTED, AbftOutcome.CORRECTED)


def test_correction_does_not_mutate_input():
    c, rs, cs = _protected()
    c[3, 7] += 2.5
    corrupted = c.copy()
    abft_check(c, rs, cs)
    assert np.array_equal(c, corrupted)


def test_shape_validation():
    with pytest.raises(ValueError):
        abft_checksums(np.zeros((3, 4)), np.zeros((3, 4)))
    with pytest.raises(ValueError):
        abft_check(np.zeros(5), np.zeros(5), np.zeros(5))


@settings(max_examples=40, deadline=None)
@given(
    row=st.integers(0, 11),
    col=st.integers(0, 11),
    delta=st.floats(0.5, 100.0),
)
def test_any_single_error_corrected(row, col, delta):
    c, rs, cs = _protected()
    c[row, col] += delta
    result = abft_check(c, rs, cs)
    assert result.outcome is AbftOutcome.CORRECTED
    np.testing.assert_allclose(result.matrix.sum(axis=0), cs, atol=1e-7)
