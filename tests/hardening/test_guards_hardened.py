"""Runtime guards and hardened-execution campaigns."""

import numpy as np
import pytest

from repro.benchmarks.registry import create, names
from repro.faults.models import FaultModel
from repro.hardening.guards import (
    GUARD_SPECS,
    FaultDetected,
    GuardKind,
    VariableGuard,
    build_guards,
)
from repro.hardening.hardened import HardenedSupervisor, run_hardened_campaign
from repro.util.bits import flip_bit_inplace

# -- guards ---------------------------------------------------------------


def test_dwc_guard_detects_any_flip():
    guard = VariableGuard("x", GuardKind.DWC)
    arr = np.arange(8, dtype=np.int64)
    guard.resync(arr)
    assert guard.clean(arr)
    flip_bit_inplace(arr, 3, 60)
    assert not guard.clean(arr)
    with pytest.raises(FaultDetected) as excinfo:
        guard.verify(arr)
    assert excinfo.value.variable == "x"
    assert excinfo.value.kind is GuardKind.DWC


def test_parity_guard_misses_even_flips():
    guard = VariableGuard("x", GuardKind.PARITY)
    arr = np.arange(8, dtype=np.int32)
    guard.resync(arr)
    flip_bit_inplace(arr, 2, 5)
    assert not guard.clean(arr)
    flip_bit_inplace(arr, 2, 9)  # second flip in the same word: even
    assert guard.clean(arr)


def test_checksum_guard_detects_value_change():
    guard = VariableGuard("x", GuardKind.CHECKSUM)
    arr = np.linspace(1, 2, 16)
    guard.resync(arr)
    assert guard.clean(arr)
    arr[5] += 0.25
    assert not guard.clean(arr)


def test_checksum_guard_handles_nan():
    guard = VariableGuard("x", GuardKind.CHECKSUM)
    arr = np.ones(4)
    guard.resync(arr)
    arr[0] = np.nan
    assert not guard.clean(arr)


def test_guard_clean_before_resync():
    guard = VariableGuard("x", GuardKind.DWC)
    assert guard.clean(np.ones(3))


def test_guard_resync_accepts_legit_writes():
    guard = VariableGuard("x", GuardKind.CHECKSUM)
    arr = np.zeros(4)
    guard.resync(arr)
    arr[:] = 7.0  # legitimate program write
    guard.resync(arr)  # scheduled scrub point
    assert guard.clean(arr)


def test_guard_specs_cover_all_benchmarks():
    assert set(GUARD_SPECS) == set(names())


def test_guard_specs_reference_real_variables():
    from repro.util.rng import derive_rng

    for name, spec in GUARD_SPECS.items():
        bench = create(name)
        state = bench.make_state(derive_rng(1, "spec", name))
        exposed = set()
        for step in range(bench.num_steps(state)):
            exposed |= {v.name for v in bench.variables(state, step)}
            bench.step(state, step)
        missing = set(spec) - exposed
        assert not missing, (name, missing)


def test_build_guards_unknown_benchmark_is_empty():
    assert build_guards("unknown") == {}


# -- hardened execution -----------------------------------------------------


@pytest.fixture(scope="module")
def hardened_dgemm() -> HardenedSupervisor:
    return HardenedSupervisor(create("dgemm"), seed=44)


def test_hardened_fault_free_run_is_masked(hardened_dgemm):
    record = hardened_dgemm._execute(run_index=0, model=None, interrupt_step=None)
    assert record.outcome == "masked"


def test_hardened_overhead_measured(hardened_dgemm):
    assert hardened_dgemm.time_overhead_factor > 1.0
    assert hardened_dgemm.guard_bytes > 0


def test_guarded_variable_faults_are_detected(hardened_dgemm):
    guarded = set(GUARD_SPECS["dgemm"])
    outcomes = []
    for run in range(120):
        record = hardened_dgemm.run_one(run, FaultModel.RANDOM)
        if record.site.variable in guarded and record.site.var_class in (
            "control",
            "pointer",
        ):
            outcomes.append(record.outcome)
    assert outcomes, "no guarded control/pointer faults sampled"
    assert outcomes.count("detected") / len(outcomes) > 0.9


def test_hardened_campaign_reduces_harm():
    result = run_hardened_campaign("dgemm", injections=120, seed=9)
    shares = result.shares()
    assert sum(shares.values()) == pytest.approx(1.0)
    assert shares["sdc"] + shares["due"] < 0.10
    assert shares["detected"] + shares["corrected"] > 0.2


def test_hardened_campaign_abft_corrects_some():
    result = run_hardened_campaign("dgemm", injections=200, seed=10)
    assert result.shares()["corrected"] > 0.0


def test_hardened_nw_parity_misses_double():
    supervisor = HardenedSupervisor(create("nw"), seed=3)
    sdc_models = []
    for run in range(150):
        record = supervisor.run_one(run, FaultModel.DOUBLE)
        if record.outcome == "sdc":
            sdc_models.append(record.fault_model)
    # Double faults on the parity-protected matrix can escape: the
    # hardened NW still produces some SDCs under the Double model.
    assert len(sdc_models) >= 1


def test_hardened_campaign_validates():
    with pytest.raises(ValueError):
        run_hardened_campaign("dgemm", injections=0)
    with pytest.raises(ValueError):
        run_hardened_campaign("dgemm", injections=5, fault_models=())
