"""Selective hardening plans and coverage evaluation."""

import pytest

from repro.analysis.criticality import criticality_by_portion
from repro.faults.outcome import InjectionRecord, Outcome
from repro.faults.site import FaultSite
from repro.hardening.evaluate import (
    ABFT_CORRECTABLE_PATTERNS,
    abft_beam_coverage,
    evaluate_plan,
)
from repro.hardening.selective import (
    RECOMMENDED_PLANS,
    HardeningPlan,
    Technique,
    detection_probability,
    recommend_plan,
)


def _record(var_class, outcome, model="single", pattern=None):
    metrics = {"pattern": pattern} if pattern else {}
    return InjectionRecord(
        benchmark="dgemm",
        run_index=0,
        site=FaultSite("f", "v", 0, "float64", var_class=var_class),
        fault_model=model,
        bits=(0,),
        interrupt_step=0,
        total_steps=10,
        time_window=0,
        num_windows=5,
        outcome=outcome,
        sdc_metrics=metrics,
    )


def test_recommended_plans_cover_all_benchmarks():
    assert set(RECOMMENDED_PLANS) == {"dgemm", "lud", "hotspot", "clamr", "nw", "lavamd"}
    for plan in RECOMMENDED_PLANS.values():
        assert plan.assignments
        assert plan.rationale


def test_paper_specific_choices():
    assert RECOMMENDED_PLANS["nw"].technique_for("matrices") is Technique.PARITY
    assert RECOMMENDED_PLANS["dgemm"].technique_for("control") is Technique.DWC
    assert RECOMMENDED_PLANS["dgemm"].technique_for("matrices") is Technique.RESIDUE_MOD15
    assert RECOMMENDED_PLANS["clamr"].technique_for("sort") is Technique.RMT


def test_detection_probabilities_by_model():
    assert detection_probability(Technique.DWC, "random") == 1.0
    assert detection_probability(Technique.PARITY, "single") == 1.0
    assert detection_probability(Technique.PARITY, "double") == 0.0
    assert detection_probability(Technique.RESIDUE_MOD3, "single") == 1.0
    assert detection_probability(Technique.RESIDUE_MOD15, "random") == pytest.approx(14 / 15)
    assert detection_probability(Technique.RMT, "zero") == 1.0
    assert detection_probability(Technique.ABFT, "double") == 1.0


def test_memory_overhead_weighted():
    plan = HardeningPlan("x", {"a": Technique.DWC, "b": Technique.PARITY})
    overhead = plan.memory_overhead_fraction({"a": 100.0, "b": 100.0, "c": 800.0})
    assert overhead == pytest.approx((100 * 1.0 + 100 / 64) / 1000.0)


def test_memory_overhead_validates():
    plan = HardeningPlan("x", {})
    with pytest.raises(ValueError):
        plan.memory_overhead_fraction({})


def test_evaluate_plan_counts():
    records = (
        [_record("control", Outcome.DUE)] * 4
        + [_record("matrix", Outcome.SDC, model="single")] * 4
        + [_record("matrix", Outcome.MASKED)] * 12
    )
    plan = HardeningPlan("dgemm", {"control": Technique.DWC})
    report = evaluate_plan(records, plan)
    assert report.harmful_faults == 8
    assert report.covered_faults == 4
    assert report.coverage_fraction == pytest.approx(0.5)
    assert report.expected_detections == pytest.approx(4.0)


def test_evaluate_plan_abft_corrections_by_pattern():
    records = [
        _record("matrix", Outcome.SDC, pattern="line"),
        _record("matrix", Outcome.SDC, pattern="square"),
        _record("matrix", Outcome.SDC, pattern="single"),
    ]
    plan = HardeningPlan("dgemm", {"matrices": Technique.ABFT})
    report = evaluate_plan(records, plan)
    assert report.expected_corrections == pytest.approx(2.0)  # line + single


def test_evaluate_plan_empty_campaign():
    plan = HardeningPlan("dgemm", {"matrices": Technique.ABFT})
    report = evaluate_plan([], plan)
    assert report.coverage_fraction == 0.0
    assert report.expected_detection_fraction == 0.0


def test_abft_correctable_patterns_match_paper():
    assert ABFT_CORRECTABLE_PATTERNS == {"single", "line", "random"}


def test_abft_beam_coverage(dgemm_beam):
    census = abft_beam_coverage(dgemm_beam)
    assert census.sdc_count == len(dgemm_beam.sdc_records())
    assert 0 <= census.correctable <= census.sdc_count
    assert census.detectable == census.sdc_count


def test_recommend_plan_threshold():
    records = (
        [_record("control", Outcome.DUE)] * 9
        + [_record("control", Outcome.MASKED)] * 1
        + [_record("matrix", Outcome.MASKED)] * 10
    )
    reports = criticality_by_portion(records)
    plan = recommend_plan("dgemm", reports, harmful_threshold=0.5)
    assert plan.technique_for("control") is Technique.DWC
    assert plan.technique_for("matrices") is None


def test_recommend_plan_validates():
    with pytest.raises(ValueError):
        recommend_plan("x", [], harmful_threshold=2.0)
