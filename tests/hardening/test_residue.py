"""Residue codes (mod 3 / mod 15)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardening.residue import (
    ResidueChecker,
    ResidueMismatch,
    detection_probability,
)


def test_check_bits():
    assert ResidueChecker(3).check_bits == 2
    assert ResidueChecker(15).check_bits == 4


def test_modulus_validated():
    with pytest.raises(ValueError):
        ResidueChecker(1)


def test_residue_values():
    checker = ResidueChecker(3)
    assert checker.residue(7) == 1
    np.testing.assert_array_equal(checker.residue(np.array([3, 4, 5])), [0, 1, 2])


def test_check_and_verify():
    checker = ResidueChecker(15)
    values = np.arange(10)
    stored = checker.residue(values)
    assert checker.check(values, stored)
    values[3] += 1
    assert not checker.check(values, stored)
    with pytest.raises(ResidueMismatch):
        checker.verify(values, stored)


def test_every_single_bit_flip_detected_mod3_and_mod15():
    # Powers of two are never divisible by 3 or 15: Single is always
    # caught (the paper's argument for residue over ECC).
    for modulus in (3, 15):
        checker = ResidueChecker(modulus)
        for bit in range(64):
            assert checker.detects_single_flip(bit), (modulus, bit)


def test_double_flip_sometimes_escapes_mod3():
    checker = ResidueChecker(3)
    # 2^1 + 2^0 = 3: escapes mod 3.
    assert not checker.detects_delta(3)
    assert checker.detects_delta(2**5 + 2**1)


def test_checked_add_and_mul():
    checker = ResidueChecker(15)
    x, rx = 100, checker.residue(100)
    y, ry = 37, checker.residue(37)
    total, rt = checker.checked_add(x, int(rx), y, int(ry))
    assert total == 137 and rt == 137 % 15
    product, rp = checker.checked_mul(x, int(rx), y, int(ry))
    assert product == 3700 and rp == 3700 % 15


def test_checked_add_catches_corrupted_operand():
    checker = ResidueChecker(3)
    with pytest.raises(ResidueMismatch):
        checker.checked_add(10, 2, 5, checker.residue(5))  # 10 % 3 == 1, not 2


def test_detection_probability_single_is_one():
    assert detection_probability(3, 1) == 1.0
    assert detection_probability(15, 1) == 1.0


def test_detection_probability_double_below_one():
    # mod 3: 2^b cycles (1, 2), so exactly half of the +/- pairings of
    # two bits produce a delta divisible by 3.
    p3 = detection_probability(3, 2)
    p15 = detection_probability(15, 2)
    assert p3 == pytest.approx(0.5)
    assert 0.5 < p15 < 1.0
    assert p15 > p3  # larger modulus catches more


def test_detection_probability_many_bits_asymptotic():
    assert detection_probability(3, 5) == pytest.approx(2 / 3)
    assert detection_probability(15, 5) == pytest.approx(14 / 15)


def test_detection_probability_validates():
    with pytest.raises(ValueError):
        detection_probability(3, 0)


@settings(max_examples=50, deadline=None)
@given(value=st.integers(0, 2**40), bit=st.integers(0, 40))
def test_flip_changes_residue_mod3(value, bit):
    checker = ResidueChecker(3)
    flipped = value ^ (1 << bit)
    assert checker.residue(value) != checker.residue(flipped)
