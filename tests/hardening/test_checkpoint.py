"""Checkpoint/restart DUE recovery."""

import numpy as np
import pytest

from repro.benchmarks.registry import create
from repro.hardening.checkpoint import run_with_checkpoints
from repro.util.rng import derive_rng


def _bench_and_state(seed=21):
    bench = create("lud", n=24, block=4)
    return bench, bench.make_state(derive_rng(seed, "ckpt"))


def test_clean_run_completes_without_failures():
    bench, state = _bench_and_state()
    golden = bench.golden(derive_rng(21, "ckpt"))
    run = run_with_checkpoints(bench, state, interval=2)
    assert run.completed
    assert run.failures == 0
    assert not run.recovered
    assert run.executed_steps == run.useful_steps
    assert run.wasted_fraction == 0.0
    np.testing.assert_array_equal(run.output, golden)


def test_checkpoints_taken_at_interval():
    bench, state = _bench_and_state()
    run = run_with_checkpoints(bench, state, interval=2)
    # 6 steps, snapshots at 0, 2, 4 (not at the final boundary).
    assert run.checkpoints_taken == 3
    assert run.checkpoint_bytes > 0


def test_crash_after_checkpoint_recovers_cheaply():
    bench, state = _bench_and_state()
    golden = bench.golden(derive_rng(21, "ckpt"))

    def inject(st):
        st.block_ctl[5] = (999, -1, 0)  # crash when block 5 runs

    run = run_with_checkpoints(bench, state, interval=2, inject=inject, inject_step=5)
    # The corruption is in block_ctl *before* the snapshot at step 4...
    # it lands at step 5, after the snapshot: first retry succeeds.
    assert run.completed
    assert run.recovered
    assert run.failures == 1
    np.testing.assert_array_equal(run.output, golden)
    assert run.wasted_fraction <= 0.5


def test_poisoned_checkpoint_falls_back_further():
    bench, state = _bench_and_state()
    golden = bench.golden(derive_rng(21, "ckpt"))

    def inject(st):
        st.block_ctl[5] = (999, -1, 0)  # poison long before it crashes

    run = run_with_checkpoints(bench, state, interval=2, inject=inject, inject_step=1)
    # Snapshots at steps 2 and 4 contain the poisoned control entry, so
    # recovery must cascade back to the pristine snapshot 0.
    assert run.completed
    assert run.failures > 1
    np.testing.assert_array_equal(run.output, golden)


def test_max_failures_gives_up():
    bench, state = _bench_and_state()

    def inject(st):
        st.block_ctl[5] = (999, -1, 0)

    run = run_with_checkpoints(
        bench, state, interval=2, inject=inject, inject_step=1, max_failures=1
    )
    assert not run.completed
    assert run.output is None
    assert run.failures == 2


def test_sdc_is_not_caught_by_checkpointing():
    bench, state = _bench_and_state()
    golden = bench.golden(derive_rng(21, "ckpt"))

    def inject(st):
        st.matrix[20, 20] += 5.0  # silent corruption, no crash

    run = run_with_checkpoints(bench, state, interval=2, inject=inject, inject_step=3)
    assert run.completed
    assert run.failures == 0
    assert not np.array_equal(run.output, golden)  # SDC sails through


def test_validation():
    bench, state = _bench_and_state()
    with pytest.raises(ValueError):
        run_with_checkpoints(bench, state, interval=0)
    with pytest.raises(ValueError):
        run_with_checkpoints(bench, state, interval=2, max_failures=-1)
    with pytest.raises(ValueError):
        run_with_checkpoints(bench, state, interval=2, inject_step=-1)
    with pytest.raises(ValueError):
        run_with_checkpoints(bench, state, interval=2, recovery_inject_attempt=0)


def test_double_strike_keeps_clean_snapshot():
    """A strike landing during restore must not poison-blame the snapshot.

    lud(n=24, block=4) runs 6 steps with snapshots at 0/2/4.  The primary
    fault crashes step 5 (after the clean step-4 snapshot); the recovery
    strike re-corrupts the restored state so the first retry crashes
    again.  Pre-fix, the repeated failure discarded the clean step-4
    snapshot and cascaded to step 2; the fix charges the crash to the
    strike and retries from step 4: attempt 1 executes steps 0-4 (5),
    attempt 2 executes step 4 (1), attempt 3 executes steps 4-5 (2).
    """
    bench, state = _bench_and_state()
    golden = bench.golden(derive_rng(21, "ckpt"))

    def crash_block_5(st):
        st.block_ctl[5] = (999, -1, 0)

    run = run_with_checkpoints(
        bench,
        state,
        interval=2,
        inject=crash_block_5,
        inject_step=5,
        recovery_inject=crash_block_5,
        recovery_inject_attempt=1,
    )
    assert run.completed
    assert run.failures == 2
    assert run.executed_steps == 8  # 5 + 1 + 2: no cascade past step 4
    np.testing.assert_array_equal(run.output, golden)


def test_double_strike_on_poisoned_cascade_still_terminates():
    bench, state = _bench_and_state()
    golden = bench.golden(derive_rng(21, "ckpt"))

    def crash_block_5(st):
        st.block_ctl[5] = (999, -1, 0)

    # Primary fault poisons every later snapshot (lands at step 1);
    # strike the second rollback too.  Recovery still cascades to the
    # pristine snapshot 0 and completes.
    run = run_with_checkpoints(
        bench,
        state,
        interval=2,
        inject=crash_block_5,
        inject_step=1,
        recovery_inject=crash_block_5,
        recovery_inject_attempt=2,
    )
    assert run.completed
    assert run.failures > 2
    np.testing.assert_array_equal(run.output, golden)


def test_interval_larger_than_run_means_restart_only():
    bench, state = _bench_and_state()

    def inject(st):
        st.block_ctl[5] = (999, -1, 0)

    run = run_with_checkpoints(bench, state, interval=100, inject=inject, inject_step=4)
    assert run.completed
    assert run.checkpoints_taken == 1  # only the pristine snapshot
    # Full restart: wasted work equals the pre-crash progress.
    assert run.executed_steps > run.useful_steps


def test_wasted_fraction_arithmetic():
    from repro.hardening.checkpoint import CheckpointRun

    run = CheckpointRun(
        completed=True,
        output=None,
        failures=1,
        executed_steps=9,
        useful_steps=6,
        checkpoints_taken=3,
        checkpoint_bytes=100,
    )
    assert run.wasted_fraction == pytest.approx(0.5)
    assert run.recovered


def test_wasted_fraction_zero_useful():
    from repro.hardening.checkpoint import CheckpointRun

    run = CheckpointRun(
        completed=False,
        output=None,
        failures=9,
        executed_steps=0,
        useful_steps=0,
        checkpoints_taken=1,
        checkpoint_bytes=0,
    )
    assert run.wasted_fraction == 0.0
    assert not run.recovered
